//! GC-point analysis (§5.1).
//!
//! "Garbage collection can be initiated only when a heap allocation
//! request is made. [...] The set S of functions that may ultimately lead
//! to garbage collection can be computed by a simple fixpoint iteration:
//! S⁰ = {new}; Sⁱ = Sⁱ⁻¹ ∪ {f | f contains a call to a function in Sⁱ⁻¹}."
//!
//! We implement exactly that fixpoint over the direct call graph, with the
//! paper's suggested higher-order approximation (§5.1 notes that a
//! higher-order analysis is harder): a closure call may reach any
//! closure-entered function, so closure call sites allocate iff *some*
//! closure-entered function may allocate.
//!
//! A call site that cannot trigger a collection needs no gc_word at all
//! ("the gc_word following the call instruction can be omitted", §2.4) —
//! experiment E6 counts the savings.

use crate::cfa::{ClosureFlow, FlowVal};
use tfgc_ir::{CallSiteId, FnId, FnKind, Instr, IrProgram, SiteKind};

/// Result of the §5.1 fixpoint.
#[derive(Debug, Clone)]
pub struct GcPoints {
    /// Per function: may executing this function trigger a collection?
    pub fn_may_gc: Vec<bool>,
    /// Per call site: can a collection happen while suspended here?
    pub site_may_gc: Vec<bool>,
    /// Whether any closure-entered function may allocate (the
    /// higher-order approximation's single global fact).
    pub any_closure_allocates: bool,
}

impl GcPoints {
    /// Runs the fixpoint with the paper's first-order approximation:
    /// every closure call may reach any closure-entered function.
    pub fn compute(p: &IrProgram) -> GcPoints {
        GcPoints::compute_inner(p, None)
    }

    /// Runs the fixpoint with closure-flow refinement (the higher-order
    /// analysis §5.1 points at): a closure call may trigger a collection
    /// only if one of its *possible* targets may. Strictly more sites
    /// lose their gc_words.
    pub fn compute_refined(p: &IrProgram, flow: &ClosureFlow) -> GcPoints {
        GcPoints::compute_inner(p, Some(flow))
    }

    fn compute_inner(p: &IrProgram, flow: Option<&ClosureFlow>) -> GcPoints {
        let n = p.funs.len();
        // Seed: functions containing an allocation instruction.
        let mut may: Vec<bool> = p
            .funs
            .iter()
            .map(|f| {
                f.code.iter().any(|i| {
                    matches!(
                        i,
                        Instr::MakeTuple { .. }
                            | Instr::MakeData { .. }
                            | Instr::MakeClosure { .. }
                    )
                })
            })
            .collect();

        // Fixpoint over the call graph. Unrefined closure calls resolve
        // with the global approximation, which itself depends on the
        // fixpoint, so iterate the pair together.
        loop {
            let any_closure = (0..n).any(|i| p.funs[i].kind == FnKind::ClosureEntered && may[i]);
            let closure_site_may = |site: CallSiteId, may: &[bool]| -> bool {
                match flow {
                    None => any_closure,
                    Some(fl) => match &fl.site_targets[site.0 as usize] {
                        Some(FlowVal::Top) | None => any_closure,
                        Some(FlowVal::Bot) => false,
                        Some(FlowVal::Fns(ts)) => ts.iter().any(|t| may[t.0 as usize]),
                    },
                }
            };
            let mut changed = false;
            for (i, f) in p.funs.iter().enumerate() {
                if may[i] {
                    continue;
                }
                let calls_gc = f.code.iter().any(|ins| match ins {
                    Instr::CallDirect { f: callee, .. } => may[callee.0 as usize],
                    Instr::CallClosure { site, .. } => closure_site_may(*site, &may),
                    _ => false,
                });
                if calls_gc {
                    may[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let any_closure_allocates =
            (0..n).any(|i| p.funs[i].kind == FnKind::ClosureEntered && may[i]);

        let site_may_gc = p
            .sites
            .iter()
            .map(|s| match &s.kind {
                SiteKind::Alloc { .. } => true,
                SiteKind::Direct { callee, .. } => may[callee.0 as usize],
                SiteKind::Closure { .. } => match flow {
                    None => any_closure_allocates,
                    Some(fl) => match &fl.site_targets[s.id.0 as usize] {
                        Some(FlowVal::Top) | None => any_closure_allocates,
                        Some(FlowVal::Bot) => false,
                        Some(FlowVal::Fns(ts)) => ts.iter().any(|t| may[t.0 as usize]),
                    },
                },
            })
            .collect();
        GcPoints {
            fn_may_gc: may,
            site_may_gc,
            any_closure_allocates,
        }
    }

    /// Can the function trigger a collection?
    pub fn fun_may_gc(&self, f: FnId) -> bool {
        self.fn_may_gc[f.0 as usize]
    }

    /// Can a collection happen while suspended at this site?
    pub fn site_may_gc(&self, s: CallSiteId) -> bool {
        self.site_may_gc[s.0 as usize]
    }

    /// Number of sites whose gc_word can be omitted entirely.
    pub fn omitted_gc_words(&self) -> usize {
        self.site_may_gc.iter().filter(|b| !**b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compile(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    fn fn_id(p: &IrProgram, prefix: &str) -> FnId {
        FnId(
            p.funs
                .iter()
                .position(|f| f.name.starts_with(prefix))
                .unwrap_or_else(|| panic!("no fn `{prefix}`")) as u32,
        )
    }

    #[test]
    fn pure_arithmetic_cannot_gc() {
        let p = compile("fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) ; fib 10");
        let gp = GcPoints::compute(&p);
        assert!(!gp.fun_may_gc(fn_id(&p, "fib")));
        // Every site in fib is a non-GC site: all its gc_words are
        // omitted.
        for s in &p.sites {
            if s.fn_id == fn_id(&p, "fib") {
                assert!(!gp.site_may_gc(s.id));
            }
        }
        assert!(gp.omitted_gc_words() > 0);
    }

    #[test]
    fn allocation_marks_function() {
        let p = compile("fun dup x = (x, x) ; dup 3");
        let gp = GcPoints::compute(&p);
        assert!(gp.fun_may_gc(fn_id(&p, "dup")));
        // The call site to dup in main may GC.
        let site = p
            .sites
            .iter()
            .find(|s| s.fn_id == p.main && matches!(s.kind, SiteKind::Direct { .. }))
            .unwrap();
        assert!(gp.site_may_gc(site.id));
    }

    #[test]
    fn transitivity_through_calls() {
        let p = compile(
            "fun alloc n = [n] ;
             fun middle n = alloc n ;
             fun top n = middle n ;
             top 1",
        );
        let gp = GcPoints::compute(&p);
        assert!(gp.fun_may_gc(fn_id(&p, "alloc")));
        assert!(gp.fun_may_gc(fn_id(&p, "middle")));
        assert!(gp.fun_may_gc(fn_id(&p, "top")));
    }

    #[test]
    fn closure_calls_use_global_approximation() {
        // The lambda allocates, so every closure call site may GC.
        let p = compile(
            "fun apply f x = f x ;
             apply (fn n => [n]) 3",
        );
        let gp = GcPoints::compute(&p);
        assert!(gp.any_closure_allocates);
        assert!(gp.fun_may_gc(fn_id(&p, "apply")));
    }

    #[test]
    fn pure_closures_do_not_poison() {
        // No closure-entered function allocates; closure calls are clean.
        let p = compile(
            "fun apply f x = f x ;
             apply (fn n => n + 1) 3",
        );
        let gp = GcPoints::compute(&p);
        assert!(!gp.any_closure_allocates);
        assert!(!gp.fun_may_gc(fn_id(&p, "apply")));
    }

    #[test]
    fn paper_append_may_gc_via_cons() {
        let p = compile(
            "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
             append [1] [2]",
        );
        let gp = GcPoints::compute(&p);
        assert!(gp.fun_may_gc(fn_id(&p, "append")));
    }
}
