//! Definite-assignment analysis.
//!
//! §1.1.1 points out that uninitialized variables "present a problem to
//! the garbage collector (it may think that an uninitialized pointer
//! contains a valid address)". Our compiled frame routines trace
//! `live ∩ assigned` slots; this module computes the *definitely assigned
//! before pc* sets and doubles as a compile-time validator that generated
//! code never leaves a live slot uninitialized at a GC point.
//!
//! The Appel-style single-descriptor strategy (§1.1.1) cannot consult
//! per-site assignment information, which is why that strategy forces the
//! VM to zero-initialize whole frames at entry — a cost experiment E3
//! measures.

use crate::bitset::SlotSet;
use crate::liveness::Liveness;
use tfgc_ir::{IrFun, IrProgram, Slot};

/// Per-function definite-assignment solution.
#[derive(Debug, Clone)]
pub struct FunInit {
    /// Slots definitely assigned *before* executing `pc`.
    pub assigned_in: Vec<SlotSet>,
}

impl FunInit {
    /// Computes definite assignment for one function. Parameters (the
    /// first `n_params` slots) are assigned at entry.
    pub fn compute(f: &IrFun) -> FunInit {
        let n = f.code.len();
        let slots = f.slots.len();
        // Forward must-analysis: meet is intersection, so start from the
        // full set everywhere except entry.
        let mut assigned_in = vec![SlotSet::full(slots); n];
        let mut entry = SlotSet::new(slots);
        for i in 0..f.n_params {
            entry.insert(Slot(i));
        }
        if n > 0 {
            assigned_in[0] = entry;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for pc in 0..n {
                let mut out = assigned_in[pc].clone();
                if let Some(d) = f.code[pc].def() {
                    out.insert(d);
                }
                for succ in f.code[pc].successors(pc as u32) {
                    let succ = succ as usize;
                    let before = assigned_in[succ].clone();
                    assigned_in[succ].intersect_with(&out);
                    if assigned_in[succ] != before {
                        changed = true;
                    }
                }
            }
        }
        FunInit { assigned_in }
    }

    /// Slots definitely assigned when a collection can occur at `pc`
    /// (i.e. after the instruction started: its own def has not happened).
    pub fn at_site(&self, pc: u32) -> &SlotSet {
        &self.assigned_in[pc as usize]
    }
}

/// Whole-program definite assignment.
#[derive(Debug, Clone)]
pub struct InitAnalysis {
    pub per_fun: Vec<FunInit>,
    /// Indexed by call site id.
    pub site_assigned: Vec<SlotSet>,
}

impl InitAnalysis {
    /// Computes the analysis for every function and site.
    pub fn compute(p: &IrProgram) -> InitAnalysis {
        let per_fun: Vec<FunInit> = p.funs.iter().map(FunInit::compute).collect();
        let site_assigned = p
            .sites
            .iter()
            .map(|s| per_fun[s.fn_id.0 as usize].at_site(s.pc).clone())
            .collect();
        InitAnalysis {
            per_fun,
            site_assigned,
        }
    }

    /// Validates that every live slot at every site is definitely
    /// assigned — the well-formedness property compiled frame routines
    /// rely on.
    ///
    /// # Errors
    ///
    /// Describes the first violation found.
    pub fn validate_live_assigned(&self, p: &IrProgram, live: &Liveness) -> Result<(), String> {
        for site in &p.sites {
            let l = &live.site_live[site.id.0 as usize];
            let a = &self.site_assigned[site.id.0 as usize];
            if !l.is_subset(a) {
                let f = &p.funs[site.fn_id.0 as usize];
                return Err(format!(
                    "function {} pc {}: live slots not definitely assigned at GC point",
                    f.name, site.pc
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::lower;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compile(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn params_assigned_at_entry() {
        let p = compile("fun f x y = x + y ; f 1 2");
        let f = p.funs.iter().find(|f| f.name.starts_with("f#")).unwrap();
        let init = FunInit::compute(f);
        assert!(init.assigned_in[0].contains(Slot(0)));
        assert!(init.assigned_in[0].contains(Slot(1)));
    }

    #[test]
    fn branch_join_is_intersection() {
        // The if's result slot is assigned on both branches, so it is
        // definitely assigned after the join; branch-local temps are not.
        let p = compile("fun f b = if b then [1] else [] ; case f true of [] => 0 | x :: _ => x");
        let init = InitAnalysis::compute(&p);
        let live = Liveness::compute(&p);
        init.validate_live_assigned(&p, &live).unwrap();
    }

    #[test]
    fn generated_code_is_always_live_implies_assigned() {
        let srcs = [
            "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ; append [1] [2]",
            "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ; map (fn x => x) [1]",
            "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree ;
             fun insert t x = case t of Leaf => Node (Leaf, x, Leaf)
               | Node (l, v, r) => if x < v then Node (insert l x, v, r) else Node (l, v, insert r x) ;
             insert (insert Leaf 3) 1",
            "let val f = fn x => fn y => (x, y) in f 1 2 end",
        ];
        for src in srcs {
            let p = compile(src);
            let init = InitAnalysis::compute(&p);
            let live = Liveness::compute(&p);
            init.validate_live_assigned(&p, &live)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }
}
