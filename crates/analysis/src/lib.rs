//! # tfgc-analysis — compile-time analyses for tag-free GC
//!
//! The analyses §5 of the paper proposes to optimize collection:
//!
//! * [`liveness`] — live-variable analysis (§5.2): frame routines trace
//!   only live slots, reclaiming structures the conventional "trace every
//!   variable in every activation record" collector would retain.
//! * [`gcpoints`] — the §5.1 fixpoint finding call sites that can never
//!   trigger a collection; their gc_words are omitted.
//! * [`init`] — definite assignment: the guard against tracing
//!   uninitialized slots (§1.1.1's correctness concern).
//!
//! ```
//! use tfgc_syntax::parse_program;
//! use tfgc_types::elaborate;
//! use tfgc_ir::lower;
//! use tfgc_analysis::{GcPoints, Liveness};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = lower(&elaborate(&parse_program(
//!     "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) ; fib 10",
//! )?)?)?;
//! let gp = GcPoints::compute(&p);
//! // Pure arithmetic: every one of fib's gc_words is omitted (§2.4).
//! assert!(gp.omitted_gc_words() > 0);
//! let live = Liveness::compute(&p);
//! assert_eq!(live.site_live.len(), p.sites.len());
//! # Ok(())
//! # }
//! ```

pub mod bitset;
pub mod cfa;
pub mod gcpoints;
pub mod init;
pub mod liveness;

pub use bitset::SlotSet;
pub use cfa::{ClosureFlow, FlowVal};
pub use gcpoints::GcPoints;
pub use init::{FunInit, InitAnalysis};
pub use liveness::{FunLiveness, Liveness};
