//! Live-variable analysis (§5.2).
//!
//! The paper's third claimed advantage: a compiler-generated frame routine
//! traces only the variables still *live* at the call site, so dead
//! structures are reclaimed earlier than in a collector that traces "every
//! variable in every activation record on the stack" (§1).
//!
//! Classic backward dataflow at instruction granularity:
//! `live_in(pc) = (live_out(pc) \ def(pc)) ∪ uses(pc)`,
//! `live_out(pc) = ⋃ live_in(succ)`.
//!
//! The set reported for a call site is `live_out(pc) \ def(pc)`: the
//! callee owns the argument values by the time a collection can happen
//! ("int_cons will trace its parameters", §2.4) and the destination slot
//! is not yet written.

use crate::bitset::SlotSet;
use tfgc_ir::{CallSiteId, IrFun, IrProgram};

/// Per-function liveness solution.
#[derive(Debug, Clone)]
pub struct FunLiveness {
    /// `live_in[pc]`.
    pub live_in: Vec<SlotSet>,
    /// `live_out[pc]`.
    pub live_out: Vec<SlotSet>,
}

impl FunLiveness {
    /// Computes liveness for one function.
    pub fn compute(f: &IrFun) -> FunLiveness {
        let n = f.code.len();
        let slots = f.slots.len();
        let mut live_in = vec![SlotSet::new(slots); n];
        let mut live_out = vec![SlotSet::new(slots); n];
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                let ins = &f.code[pc];
                let mut out = SlotSet::new(slots);
                for succ in ins.successors(pc as u32) {
                    out.union_with(&live_in[succ as usize]);
                }
                let mut inn = out.clone();
                if let Some(d) = ins.def() {
                    inn.remove(d);
                }
                for u in ins.uses() {
                    inn.insert(u);
                }
                if out != live_out[pc] {
                    live_out[pc] = out;
                    changed = true;
                }
                if inn != live_in[pc] {
                    live_in[pc] = inn;
                    changed = true;
                }
            }
        }
        FunLiveness { live_in, live_out }
    }

    /// Slots the frame routine must consider at the call site at `pc`:
    /// live after the call, excluding the not-yet-written destination.
    pub fn site_live(&self, f: &IrFun, pc: u32) -> SlotSet {
        let mut s = self.live_out[pc as usize].clone();
        if let Some(d) = f.code[pc as usize].def() {
            s.remove(d);
        }
        s
    }
}

/// Whole-program liveness: site id → live slot set.
#[derive(Debug, Clone)]
pub struct Liveness {
    pub per_fun: Vec<FunLiveness>,
    /// Indexed by `CallSiteId`.
    pub site_live: Vec<SlotSet>,
}

impl Liveness {
    /// Computes liveness for every function and call site of the program.
    pub fn compute(p: &IrProgram) -> Liveness {
        let per_fun: Vec<FunLiveness> = p.funs.iter().map(FunLiveness::compute).collect();
        let mut site_live = Vec::with_capacity(p.sites.len());
        for site in &p.sites {
            let f = &p.funs[site.fn_id.0 as usize];
            site_live.push(per_fun[site.fn_id.0 as usize].site_live(f, site.pc));
        }
        Liveness { per_fun, site_live }
    }

    /// The live set at a site.
    pub fn at(&self, id: CallSiteId) -> &SlotSet {
        &self.site_live[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_ir::{lower, SiteKind, Slot};
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn compile(src: &str) -> IrProgram {
        lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn dead_after_use_is_not_live() {
        // `x` is dead once `x + x` is computed; at the tuple allocation it
        // must not be live.
        let p = compile("let val x = [1] val y = 2 + 2 in (y, y) end");
        let live = Liveness::compute(&p);
        // Find the tuple allocation site in main.
        let site = p
            .sites
            .iter()
            .rev()
            .find(|s| matches!(s.kind, SiteKind::Alloc { .. }) && s.fn_id == p.main)
            .expect("tuple site");
        let set = live.at(site.id);
        // The slot bound to x holds the only int list in main's frame.
        let main = p.fun(p.main);
        let list_slots: Vec<Slot> = main
            .slots
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(t, tfgc_ir::SlotTy::Val(ty) if *ty == tfgc_types::Type::list(tfgc_types::Type::Int))
            })
            .map(|(i, _)| Slot(i as u16))
            .collect();
        for s in list_slots {
            assert!(
                !set.contains(s),
                "dead list slot {s:?} should not be live at final tuple site"
            );
        }
    }

    #[test]
    fn paper_append_recursive_site_has_no_live_pointers() {
        // §2.4: "garbage collection never needs to trace the elements of an
        // append activation record". The value of `x` (an int) is the only
        // thing live across the recursive call.
        let p = compile(
            "fun append [] (ys : int list) = ys
               | append (x :: xs) ys = x :: append xs ys ;
             append [1] [2]",
        );
        let live = Liveness::compute(&p);
        let append = p
            .funs
            .iter()
            .position(|f| f.name.starts_with("append"))
            .unwrap();
        for site in &p.sites {
            if site.fn_id.0 as usize != append {
                continue;
            }
            let set = live.at(site.id);
            // Any live slot at any append site must be of int type —
            // nothing heap-allocated survives across a call.
            for s in set.iter() {
                let ty = &p.funs[append].slots[s.0 as usize];
                assert_eq!(
                    ty,
                    &tfgc_ir::SlotTy::Val(tfgc_types::Type::Int),
                    "append keeps non-int slot {s:?} live at site {}",
                    site.id.0
                );
            }
        }
    }

    #[test]
    fn arguments_still_live_when_used_after_call() {
        let p = compile("fun f x = x + 1 ; let val a = 5 in f a + a end");
        let live = Liveness::compute(&p);
        let main = p.fun(p.main);
        // The site calling f: `a`'s slot must be live (used again after).
        let site = p
            .sites
            .iter()
            .find(|s| s.fn_id == p.main && matches!(s.kind, SiteKind::Direct { .. }))
            .unwrap();
        let set = live.at(site.id);
        assert!(
            !set.is_empty(),
            "slot of `a` must stay live across the call"
        );
        let _ = main;
    }

    #[test]
    fn branch_liveness_joins_paths() {
        let p = compile(
            "fun pick b = if b then [1] else [2] ;
             let val xs = pick true in case xs of [] => 0 | x :: _ => x end",
        );
        let live = Liveness::compute(&p);
        // Liveness computed for every function without panicking, and all
        // site sets are within slot bounds.
        for (i, set) in live.site_live.iter().enumerate() {
            let f = &p.funs[p.sites[i].fn_id.0 as usize];
            assert_eq!(set.capacity(), f.slots.len());
        }
    }
}
