//! A small fixed-capacity bit set over frame slots.

use tfgc_ir::Slot;

/// A set of frame slots, stored as a bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlotSet {
    bits: Vec<u64>,
    len: usize,
}

impl SlotSet {
    /// An empty set with capacity for `len` slots.
    pub fn new(len: usize) -> Self {
        SlotSet {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of slots the set can hold.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts a slot; returns true if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of capacity.
    pub fn insert(&mut self, s: Slot) -> bool {
        let i = s.0 as usize;
        assert!(i < self.len, "slot {i} out of capacity {}", self.len);
        let w = i / 64;
        let m = 1u64 << (i % 64);
        let was = self.bits[w] & m != 0;
        self.bits[w] |= m;
        !was
    }

    /// Removes a slot.
    pub fn remove(&mut self, s: Slot) {
        let i = s.0 as usize;
        if i < self.len {
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, s: Slot) -> bool {
        let i = s.0 as usize;
        i < self.len && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &SlotSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Intersects `other` into `self`.
    pub fn intersect_with(&mut self, other: &SlotSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// True when `self ⊆ other`.
    pub fn is_subset(&self, other: &SlotSet) -> bool {
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Number of slots in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Iterates the member slots in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Slot> + '_ {
        (0..self.len)
            .map(|i| Slot(i as u16))
            .filter(move |s| self.contains(*s))
    }

    /// A set containing every slot below `len`.
    pub fn full(len: usize) -> Self {
        let mut s = SlotSet::new(len);
        for i in 0..len {
            s.insert(Slot(i as u16));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = SlotSet::new(130);
        assert!(s.insert(Slot(0)));
        assert!(s.insert(Slot(129)));
        assert!(!s.insert(Slot(0)));
        assert!(s.contains(Slot(129)));
        s.remove(Slot(129));
        assert!(!s.contains(Slot(129)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_reports_change() {
        let mut a = SlotSet::new(10);
        let mut b = SlotSet::new(10);
        b.insert(Slot(3));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(b.is_subset(&a));
    }

    #[test]
    fn iter_ascending() {
        let mut s = SlotSet::new(80);
        s.insert(Slot(70));
        s.insert(Slot(2));
        let v: Vec<u16> = s.iter().map(|x| x.0).collect();
        assert_eq!(v, vec![2, 70]);
    }

    #[test]
    fn full_and_intersect() {
        let mut f = SlotSet::full(5);
        assert_eq!(f.count(), 5);
        let mut g = SlotSet::new(5);
        g.insert(Slot(1));
        f.intersect_with(&g);
        assert_eq!(f.count(), 1);
        assert!(f.contains(Slot(1)));
    }
}
