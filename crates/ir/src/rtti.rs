//! Runtime-type-information need analysis.
//!
//! Goldberg's §3 scheme propagates type information at **GC time only**:
//! frame routines pass type_gc_routines down the stack, and the routine for
//! a closure-typed slot can be unpacked to recover routines for the
//! closure's own type parameters ("the type_gc_routine for x can be
//! extracted from the closure"). That covers every parameter that *occurs
//! in the closure's own type*.
//!
//! It does not cover a capture whose type mentions a creator parameter
//! hidden by the closure's type — e.g. `fun k (x : 'a) = fn (u : int) => u`
//! creates an `int -> int` closure capturing an `'a`. The 1991 paper does
//! not address this case (its resolution is the subject of the 1992
//! Goldberg–Gloger follow-up). We complete the scheme with **hidden
//! runtime type descriptors**: such a closure carries interned descriptor
//! words for exactly the undetermined parameters, built by the mutator at
//! closure-creation time. This module computes, by a fixpoint over the
//! call/creation graph, which functions need which descriptors — the
//! measured rarity of these descriptors (experiment E6 companion metric)
//! quantifies how complete the paper's pure scheme is in practice.

use crate::instr::FnId;
use crate::program::{FnKind, IrProgram, SiteKind};
use std::collections::{BTreeSet, HashSet};
use tfgc_types::{ParamId, SchemeId, Type};

/// A closure creation recorded during lowering: `creator` executes a
/// `MakeClosure` targeting `target`, with `theta` giving each of the
/// target's frame params as a type over the creator's frame params.
#[derive(Debug, Clone)]
pub struct Creation {
    pub creator: FnId,
    pub target: FnId,
    /// Aligned with `target.frame_params`.
    pub theta: Vec<Type>,
}

/// Result of the analysis, indexed by function.
#[derive(Debug, Clone, Default)]
pub struct RttiInfo {
    /// Parameters whose descriptors the function needs at *runtime* (to
    /// build descriptors for closures it creates or callees it parameterizes).
    pub needs_rt: Vec<Vec<ParamId>>,
    /// Closure-entered functions: parameters required for frame/closure
    /// tracing that are *not* recoverable from the function's own arrow
    /// type (the paper's uncovered case).
    pub gc_hidden: Vec<Vec<ParamId>>,
    /// Hidden descriptor fields stored in the closure environment
    /// (closure-entered: `gc_hidden ∪ needs_rt`), or extra descriptor
    /// arguments (direct: `needs_rt`).
    pub desc_fields: Vec<Vec<ParamId>>,
}

impl RttiInfo {
    /// Runs the fixpoint over a fully lowered (pass-1) program.
    pub fn compute(
        prog: &IrProgram,
        creations: &[Creation],
        opaque_schemes: &HashSet<SchemeId>,
    ) -> RttiInfo {
        let n = prog.funs.len();
        // Params recoverable from the arrow type, per closure-entered fn.
        let mut recoverable: Vec<BTreeSet<ParamId>> = Vec::with_capacity(n);
        for f in &prog.funs {
            let mut set = BTreeSet::new();
            if f.kind == FnKind::ClosureEntered {
                f.arrow_ty.params(&mut set);
            }
            recoverable.push(set);
        }
        // gc_hidden = frame params not recoverable and not opaque.
        let gc_hidden: Vec<BTreeSet<ParamId>> = prog
            .funs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                if f.kind != FnKind::ClosureEntered {
                    return BTreeSet::new();
                }
                f.frame_params
                    .iter()
                    .copied()
                    .filter(|q| !recoverable[i].contains(q) && !opaque_schemes.contains(&q.scheme))
                    .collect()
            })
            .collect();

        let mut needs: Vec<BTreeSet<ParamId>> = vec![BTreeSet::new(); n];
        let relevant = |q: &ParamId| !opaque_schemes.contains(&q.scheme);
        loop {
            let mut changed = false;
            // Closure creations: the creator must be able to build a
            // descriptor for every hidden/runtime param of the target.
            for c in creations {
                let ti = c.target.0 as usize;
                let ci = c.creator.0 as usize;
                let wanted: Vec<usize> = prog.funs[ti]
                    .frame_params
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| gc_hidden[ti].contains(q) || needs[ti].contains(q))
                    .map(|(j, _)| j)
                    .collect();
                for j in wanted {
                    let mut ps = BTreeSet::new();
                    c.theta[j].params(&mut ps);
                    for p in ps.into_iter().filter(relevant) {
                        changed |= needs[ci].insert(p);
                    }
                }
            }
            // Direct calls: the caller must pass descriptors for the
            // callee's runtime-needed params.
            for site in &prog.sites {
                if let SiteKind::Direct { callee, theta } = &site.kind {
                    let gi = callee.0 as usize;
                    let li = site.fn_id.0 as usize;
                    let wanted: Vec<usize> = prog.funs[gi]
                        .frame_params
                        .iter()
                        .enumerate()
                        .filter(|(_, q)| needs[gi].contains(q))
                        .map(|(j, _)| j)
                        .collect();
                    for j in wanted {
                        let mut ps = BTreeSet::new();
                        theta[j].params(&mut ps);
                        for p in ps.into_iter().filter(relevant) {
                            changed |= needs[li].insert(p);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let desc_fields: Vec<Vec<ParamId>> = (0..n)
            .map(|i| {
                let set: BTreeSet<ParamId> = if prog.funs[i].kind == FnKind::ClosureEntered {
                    gc_hidden[i].union(&needs[i]).copied().collect()
                } else {
                    needs[i].clone()
                };
                set.into_iter().collect()
            })
            .collect();
        RttiInfo {
            needs_rt: needs.into_iter().map(|s| s.into_iter().collect()).collect(),
            gc_hidden: gc_hidden
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            desc_fields,
        }
    }

    /// Total number of hidden descriptor fields across all functions — the
    /// headline "how often does the paper's pure scheme fall short" metric.
    pub fn total_desc_fields(&self) -> usize {
        self.desc_fields.iter().map(Vec::len).sum()
    }
}
