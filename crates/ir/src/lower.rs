//! Lowering from the typed AST to bytecode.
//!
//! Responsibilities:
//!
//! * **Closure conversion / lambda lifting.** `let fun`s become direct
//!   functions with their free variables appended as extra parameters;
//!   lambdas become closure-entered functions whose environment is unpacked
//!   at entry; partially applied or first-class uses of direct functions go
//!   through generated curry wrappers.
//! * **Pattern compilation.** `case` arms compile to discriminant tests
//!   (§2.3), field loads, and branches.
//! * **Call-site bookkeeping.** Every call/allocation instruction registers
//!   a [`CallSite`]; direct sites record the static instantiation θ of the
//!   callee's frame parameters — what the caller's frame GC routine
//!   evaluates at collection time (§3).
//! * **Hidden descriptor plumbing** (see [`crate::rtti`]): lowering runs
//!   twice; the first pass produces the call/creation graph, the fixpoint
//!   decides which functions carry runtime type descriptors, and the second
//!   pass emits `EvalDesc` instructions and descriptor fields.

use crate::alpha::alpha_rename;
use crate::instr::*;
use crate::program::*;
use crate::rtti::{Creation, RttiInfo};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use tfgc_syntax::Span;
use tfgc_types::{
    ParamId, SchemeId, TExpr, TExprKind, TFun, TLetBind, TPat, TPatKind, TProgram, Type,
};

/// An error produced during lowering (capacity limits or internal
/// invariant violations surfaced as errors rather than panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    pub span: Span,
    pub message: String,
}

impl LowerError {
    fn new(span: Span, message: impl Into<String>) -> Self {
        LowerError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LowerError {}

/// Result alias for lowering.
pub type LowerResult<T> = Result<T, LowerError>;

const DUMMY_SCHEME: SchemeId = SchemeId(u32::MAX);

/// Lowers a typed program to bytecode (two-pass; see module docs).
///
/// # Errors
///
/// Returns a [`LowerError`] on capacity limits (too many slots) or
/// internal invariant violations.
pub fn lower(tp: &TProgram) -> LowerResult<IrProgram> {
    Ok(lower_full(tp)?.0)
}

/// Like [`lower`], also returning the RTTI analysis (for experiment
/// metrics).
pub fn lower_full(tp: &TProgram) -> LowerResult<(IrProgram, RttiInfo)> {
    let mut tp = tp.clone();
    alpha_rename(&mut tp);
    let opaque = collect_opaque_schemes(&tp);
    let (p1, creations) = Lowerer::new(&tp, None, &opaque).run()?;
    let rtti = RttiInfo::compute(&p1, &creations, &opaque);
    let (p2, _) = Lowerer::new(&tp, Some(&rtti), &opaque).run()?;
    debug_assert_eq!(p2.validate(), Ok(()));
    Ok((p2, rtti))
}

/// Schemes whose parameters are *locally quantified values* (generalized
/// `val` bindings and globals): by parametricity no reachable heap value
/// sits at such a parameter's type, so GC treats them as opaque.
fn collect_opaque_schemes(tp: &TProgram) -> HashSet<SchemeId> {
    fn walk(e: &TExpr, out: &mut HashSet<SchemeId>) {
        match &e.kind {
            TExprKind::Let { binds, body } => {
                for b in binds {
                    match b {
                        TLetBind::Val { rhs, scheme, .. } => {
                            if let Some(s) = scheme {
                                out.insert(s.id);
                            }
                            walk(rhs, out);
                        }
                        TLetBind::Fun(funs) => {
                            for f in funs {
                                walk(&f.body, out);
                            }
                        }
                    }
                }
                walk(body, out);
            }
            TExprKind::Tuple(es) | TExprKind::Ctor { args: es, .. } => {
                for x in es {
                    walk(x, out);
                }
            }
            TExprKind::Proj { tuple, .. } => walk(tuple, out),
            TExprKind::App { f, arg } => {
                walk(f, out);
                walk(arg, out);
            }
            TExprKind::BinOp { lhs, rhs, .. } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            TExprKind::UnOp { operand, .. } => walk(operand, out),
            TExprKind::If { cond, then, els } => {
                walk(cond, out);
                walk(then, out);
                walk(els, out);
            }
            TExprKind::Case { scrut, arms } => {
                walk(scrut, out);
                for a in arms {
                    walk(&a.body, out);
                }
            }
            TExprKind::Lambda { body, .. } => walk(body, out),
            TExprKind::Seq(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            _ => {}
        }
    }
    let mut out = HashSet::new();
    for g in &tp.globals {
        out.insert(g.scheme.id);
    }
    for f in &tp.funs {
        walk(&f.body, &mut out);
    }
    for g in &tp.globals {
        walk(&g.init, &mut out);
    }
    walk(&tp.main, &mut out);
    out
}

/// Per-function metadata available before the body is compiled.
#[derive(Debug, Clone)]
struct FnMeta {
    scheme_id: SchemeId,
    scheme_params: u32,
    user_arity: u16,
    /// User-visible parameter types, over the scheme's parameters.
    user_param_tys: Vec<Type>,
    ret_ty: Type,
    /// Lifted free variables (`let fun` only): unique names + types.
    extras: Vec<(String, Type)>,
}

/// Where a name resolves during lowering.
#[derive(Debug, Clone, Copy)]
enum Loc {
    Global(GlobalId),
    Fun(FnId),
}

struct Lowerer<'a> {
    tp: &'a TProgram,
    rtti: Option<&'a RttiInfo>,
    opaque: &'a HashSet<SchemeId>,
    ctor_reps: Vec<Vec<CtorRep>>,
    funs: Vec<Option<IrFun>>,
    metas: Vec<FnMeta>,
    sites: Vec<CallSite>,
    /// (creator, target, scheme instantiation) — expanded in `finalize`.
    raw_creations: Vec<(FnId, FnId, Vec<Type>)>,
    desc_templates: Vec<Type>,
    desc_index: HashMap<Type, DescTemplateId>,
    globals: Vec<GlobalInfo>,
    global_locs: HashMap<String, Loc>,
    wrappers: HashMap<(FnId, u16), FnId>,
    print_fn: Option<FnId>,
}

/// Builder for one function's code.
struct Fb {
    id: FnId,
    name: String,
    kind: FnKind,
    code: Vec<Instr>,
    slots: Vec<SlotTy>,
    n_params: u16,
    locals: HashMap<String, Slot>,
    labels: Vec<Option<u32>>,
    /// (pc, label) pairs to patch.
    patches: Vec<(usize, u32)>,
    desc_map: Vec<(ParamId, Slot)>,
    arrow_ty: Type,
    captures: Vec<SlotTy>,
    desc_fields: Vec<ParamId>,
    ret_ty: Type,
    span: Span,
}

impl Fb {
    fn new(id: FnId, name: String, kind: FnKind, arrow_ty: Type, ret_ty: Type, span: Span) -> Fb {
        Fb {
            id,
            name,
            kind,
            code: Vec::new(),
            slots: Vec::new(),
            n_params: 0,
            locals: HashMap::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            desc_map: Vec::new(),
            arrow_ty,
            captures: Vec::new(),
            desc_fields: Vec::new(),
            ret_ty,
            span,
        }
    }

    fn new_slot(&mut self, ty: SlotTy) -> LowerResult<Slot> {
        if self.slots.len() >= u16::MAX as usize {
            return Err(LowerError::new(
                self.span,
                format!("function `{}` needs too many frame slots", self.name),
            ));
        }
        let s = Slot(self.slots.len() as u16);
        self.slots.push(ty);
        Ok(s)
    }

    fn val_slot(&mut self, ty: Type) -> LowerResult<Slot> {
        self.new_slot(SlotTy::Val(ty))
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(None);
        (self.labels.len() - 1) as u32
    }

    fn bind_label(&mut self, l: u32) {
        debug_assert!(self.labels[l as usize].is_none(), "label bound twice");
        self.labels[l as usize] = Some(self.code.len() as u32);
    }

    fn emit_jump(&mut self, l: u32) {
        let pc = self.emit(Instr::Jump(0));
        self.patches.push((pc, l));
    }

    fn emit_branch_false(&mut self, s: Slot, l: u32) {
        let pc = self.emit(Instr::BranchFalse(s, 0));
        self.patches.push((pc, l));
    }

    fn emit_branch_int_ne(&mut self, s: Slot, imm: i64, l: u32) {
        let pc = self.emit(Instr::BranchIntNe(s, imm, 0));
        self.patches.push((pc, l));
    }

    fn emit_branch_tag_ne(&mut self, obj: Slot, data: tfgc_types::DataId, ctor: u32, l: u32) {
        let pc = self.emit(Instr::BranchTagNe {
            obj,
            data,
            ctor,
            target: 0,
        });
        self.patches.push((pc, l));
    }

    /// The slot bound to `name`, if local.
    fn local(&self, name: &str) -> Option<Slot> {
        self.locals.get(name).copied()
    }

    fn slot_val_ty(&self, s: Slot) -> LowerResult<Type> {
        match &self.slots[s.0 as usize] {
            SlotTy::Val(t) => Ok(t.clone()),
            SlotTy::Desc => Err(LowerError::new(
                self.span,
                "internal error: expected value slot, found descriptor slot",
            )),
        }
    }

    /// Patches labels; the caller assembles the final `IrFun`.
    fn patch(&mut self) -> LowerResult<()> {
        for (pc, l) in std::mem::take(&mut self.patches) {
            let target = self.labels[l as usize]
                .ok_or_else(|| LowerError::new(self.span, "internal error: unbound label"))?;
            match &mut self.code[pc] {
                Instr::Jump(t)
                | Instr::BranchFalse(_, t)
                | Instr::BranchIntNe(_, _, t)
                | Instr::BranchTagNe { target: t, .. } => *t = target,
                other => {
                    return Err(LowerError::new(
                        self.span,
                        format!("internal error: patching non-branch {other:?}"),
                    ))
                }
            }
        }
        Ok(())
    }
}

impl<'a> Lowerer<'a> {
    fn new(tp: &'a TProgram, rtti: Option<&'a RttiInfo>, opaque: &'a HashSet<SchemeId>) -> Self {
        Lowerer {
            tp,
            rtti,
            opaque,
            ctor_reps: compute_ctor_reps(&tp.data_env),
            funs: Vec::new(),
            metas: Vec::new(),
            sites: Vec::new(),
            raw_creations: Vec::new(),
            desc_templates: Vec::new(),
            desc_index: HashMap::new(),
            globals: Vec::new(),
            global_locs: HashMap::new(),
            wrappers: HashMap::new(),
            print_fn: None,
        }
    }

    fn reserve(&mut self, meta: FnMeta) -> FnId {
        let id = FnId(self.funs.len() as u32);
        self.funs.push(None);
        self.metas.push(meta);
        id
    }

    /// Hidden descriptor fields/arguments of `f` per the RTTI analysis
    /// (empty in pass 1).
    fn desc_fields_of(&self, f: FnId) -> Vec<ParamId> {
        match self.rtti {
            Some(r) => r.desc_fields[f.0 as usize].clone(),
            None => Vec::new(),
        }
    }

    fn intern_template(&mut self, ty: Type) -> DescTemplateId {
        if let Some(id) = self.desc_index.get(&ty) {
            return *id;
        }
        let id = DescTemplateId(self.desc_templates.len() as u32);
        self.desc_templates.push(ty.clone());
        self.desc_index.insert(ty, id);
        id
    }

    fn run(mut self) -> LowerResult<(IrProgram, Vec<Creation>)> {
        let tp = self.tp;
        // Reserve ids: top funs, then main; everything else is discovered.
        for f in &tp.funs {
            let id = self.reserve(FnMeta {
                scheme_id: f.scheme.id,
                scheme_params: f.scheme.num_params,
                user_arity: f.params.len() as u16,
                user_param_tys: f.params.iter().map(|(_, t)| t.clone()).collect(),
                ret_ty: f.ret.clone(),
                extras: Vec::new(),
            });
            self.global_locs.insert(f.name.clone(), Loc::Fun(id));
        }
        let main_id = self.reserve(FnMeta {
            scheme_id: DUMMY_SCHEME,
            scheme_params: 0,
            user_arity: 0,
            user_param_tys: Vec::new(),
            ret_ty: tp.main.ty.clone(),
            extras: Vec::new(),
        });
        for (i, g) in tp.globals.iter().enumerate() {
            self.globals.push(GlobalInfo {
                name: g.name.clone(),
                ty: g.scheme.ty.clone(),
            });
            self.global_locs
                .insert(g.name.clone(), Loc::Global(GlobalId(i as u32)));
        }

        // Compile top-level function bodies.
        for (i, f) in tp.funs.iter().enumerate() {
            let fun = self.compile_direct(FnId(i as u32), f, &[])?;
            self.funs[i] = Some(fun);
        }

        // Compile main: global initializers then the main expression.
        {
            let main_ty = tp.main.ty.clone();
            let mut fb = Fb::new(
                main_id,
                "main".to_string(),
                FnKind::Direct,
                main_ty.clone(),
                main_ty,
                tp.main.span,
            );
            for (i, g) in tp.globals.iter().enumerate() {
                let r = self.lower_expr(&mut fb, &g.init)?;
                fb.emit(Instr::StoreGlobal(GlobalId(i as u32), r));
            }
            let r = self.lower_expr(&mut fb, &tp.main)?;
            fb.emit(Instr::Return(r));
            let fun = self.finish_fun(fb)?;
            self.funs[main_id.0 as usize] = Some(fun);
        }

        self.finalize(main_id)
    }

    /// Compiles a direct (named) function: top-level, or `let fun` with
    /// `extras` lifted parameters.
    fn compile_direct(
        &mut self,
        id: FnId,
        f: &TFun,
        extras: &[(String, Type)],
    ) -> LowerResult<IrFun> {
        let arrow = Type::arrow_n(f.params.iter().map(|(_, t)| t.clone()), f.ret.clone());
        let mut fb = Fb::new(
            id,
            f.name.clone(),
            FnKind::Direct,
            arrow,
            f.ret.clone(),
            f.span,
        );
        for (name, ty) in &f.params {
            let s = fb.val_slot(ty.clone())?;
            fb.locals.insert(name.clone(), s);
        }
        for (name, ty) in extras {
            let s = fb.val_slot(ty.clone())?;
            fb.locals.insert(name.clone(), s);
        }
        let descs = self.desc_fields_of(id);
        for q in &descs {
            let s = fb.new_slot(SlotTy::Desc)?;
            fb.desc_map.push((*q, s));
        }
        fb.n_params = fb.slots.len() as u16;
        fb.desc_fields = descs;
        let r = self.lower_expr(&mut fb, &f.body)?;
        fb.emit(Instr::Return(r));
        self.finish_fun(fb)
    }

    /// Assembles an `IrFun` from a finished builder: patch jumps, compute
    /// frame params and their GC-time sources.
    fn finish_fun(&mut self, mut fb: Fb) -> LowerResult<IrFun> {
        fb.patch()?;
        let mut params: BTreeSet<ParamId> = BTreeSet::new();
        for s in &fb.slots {
            if let SlotTy::Val(t) = s {
                t.params(&mut params);
            }
        }
        let frame_params: Vec<ParamId> = params.into_iter().collect();
        let mut param_source = Vec::with_capacity(frame_params.len());
        for q in &frame_params {
            let src = if self.opaque.contains(&q.scheme) {
                ParamSource::Opaque
            } else if fb.kind == FnKind::Direct {
                ParamSource::CallerTheta
            } else if let Some(path) = find_param_path(&fb.arrow_ty, *q) {
                ParamSource::ArrowPath(path)
            } else if let Some((_, s)) = fb.desc_map.iter().find(|(p, _)| p == q) {
                ParamSource::DescSlot(*s)
            } else if self.rtti.is_none() {
                // Pass 1: sources are recomputed in pass 2.
                ParamSource::CallerTheta
            } else {
                return Err(LowerError::new(
                    fb.span,
                    format!(
                        "internal error: no GC source for parameter of `{}`",
                        fb.name
                    ),
                ));
            };
            param_source.push(src);
        }
        Ok(IrFun {
            name: fb.name,
            kind: fb.kind,
            code: fb.code,
            slots: fb.slots,
            n_params: fb.n_params,
            frame_params,
            param_source,
            arrow_ty: fb.arrow_ty,
            captures: fb.captures,
            desc_fields: fb.desc_fields,
            desc_param_slots: fb.desc_map,
            ret_ty: fb.ret_ty,
            span: fb.span,
        })
    }

    fn new_site(&mut self, fb: &Fb, kind: SiteKind) -> CallSiteId {
        let id = CallSiteId(self.sites.len() as u32);
        self.sites.push(CallSite {
            id,
            fn_id: fb.id,
            pc: fb.code.len() as u32,
            kind,
        });
        id
    }

    /// Emits `EvalDesc` instructions for each parameter in `fields`,
    /// instantiated through `expand`. Returns the descriptor slots.
    fn emit_desc_args(
        &mut self,
        fb: &mut Fb,
        fields: &[ParamId],
        scheme: SchemeId,
        inst: &[Type],
    ) -> LowerResult<Vec<Slot>> {
        let mut out = Vec::with_capacity(fields.len());
        for q in fields {
            let ty = expand_inst(*q, scheme, inst);
            let template = self.intern_template(ty);
            let dst = fb.new_slot(SlotTy::Desc)?;
            fb.emit(Instr::EvalDesc { dst, template });
            out.push(dst);
        }
        Ok(out)
    }

    // ---- expressions ---------------------------------------------------

    fn lower_expr(&mut self, fb: &mut Fb, e: &TExpr) -> LowerResult<Slot> {
        match &e.kind {
            TExprKind::Int(n) => {
                let d = fb.val_slot(Type::Int)?;
                fb.emit(Instr::LoadInt(d, *n));
                Ok(d)
            }
            TExprKind::Bool(b) => {
                let d = fb.val_slot(Type::Bool)?;
                fb.emit(Instr::LoadBool(d, *b));
                Ok(d)
            }
            TExprKind::Unit => {
                let d = fb.val_slot(Type::Unit)?;
                fb.emit(Instr::LoadUnit(d));
                Ok(d)
            }
            TExprKind::Var { name, inst, .. } => {
                if let Some(s) = fb.local(name) {
                    return Ok(s);
                }
                match self.global_locs.get(name).copied() {
                    Some(Loc::Global(g)) => {
                        let d = fb.val_slot(e.ty.clone())?;
                        fb.emit(Instr::LoadGlobal(d, g));
                        Ok(d)
                    }
                    Some(Loc::Fun(g)) => {
                        let inst = inst.clone().unwrap_or_default();
                        self.make_fn_value(fb, g, &inst, &e.ty)
                    }
                    None if name == "print" => {
                        let pf = self.get_print_fn()?;
                        self.make_fn_value(fb, pf, &[], &e.ty)
                    }
                    _ => Err(LowerError::new(
                        e.span,
                        format!("internal error: unresolved variable `{name}`"),
                    )),
                }
            }
            TExprKind::Tuple(es) => {
                let mut elems = Vec::with_capacity(es.len());
                for x in es {
                    elems.push(self.lower_expr(fb, x)?);
                }
                let operand_tys = es.iter().map(|x| SlotTy::Val(x.ty.clone())).collect();
                let d = fb.val_slot(e.ty.clone())?;
                let site = self.new_site(fb, SiteKind::Alloc { operand_tys });
                fb.emit(Instr::MakeTuple {
                    dst: d,
                    elems,
                    site,
                });
                Ok(d)
            }
            TExprKind::Ctor { data, tag, args } => {
                let rep = self.ctor_reps[data.0 as usize][*tag as usize];
                match rep {
                    CtorRep::Imm(k) => {
                        let d = fb.val_slot(e.ty.clone())?;
                        fb.emit(Instr::LoadInt(d, k as i64));
                        Ok(d)
                    }
                    CtorRep::Ptr { .. } => {
                        let mut fields = Vec::with_capacity(args.len());
                        for a in args {
                            fields.push(self.lower_expr(fb, a)?);
                        }
                        let operand_tys = args.iter().map(|a| SlotTy::Val(a.ty.clone())).collect();
                        let d = fb.val_slot(e.ty.clone())?;
                        let site = self.new_site(fb, SiteKind::Alloc { operand_tys });
                        fb.emit(Instr::MakeData {
                            dst: d,
                            data: *data,
                            ctor: *tag,
                            fields,
                            site,
                        });
                        Ok(d)
                    }
                }
            }
            TExprKind::Proj { tuple, index } => {
                let t = self.lower_expr(fb, tuple)?;
                let d = fb.val_slot(e.ty.clone())?;
                fb.emit(Instr::GetField(d, t, *index as u16));
                Ok(d)
            }
            TExprKind::App { .. } => self.lower_app(fb, e),
            TExprKind::BinOp { op, lhs, rhs } => {
                let a = self.lower_expr(fb, lhs)?;
                let b = self.lower_expr(fb, rhs)?;
                let d = fb.val_slot(e.ty.clone())?;
                use tfgc_syntax::BinOp as B;
                let instr = match op {
                    B::Add => Instr::Arith(d, ArithOp::Add, a, b),
                    B::Sub => Instr::Arith(d, ArithOp::Sub, a, b),
                    B::Mul => Instr::Arith(d, ArithOp::Mul, a, b),
                    B::Div => Instr::Arith(d, ArithOp::Div, a, b),
                    B::Mod => Instr::Arith(d, ArithOp::Mod, a, b),
                    B::Eq => Instr::Cmp(d, CmpOp::Eq, a, b),
                    B::NotEq => Instr::Cmp(d, CmpOp::Ne, a, b),
                    B::Lt => Instr::Cmp(d, CmpOp::Lt, a, b),
                    B::Le => Instr::Cmp(d, CmpOp::Le, a, b),
                    B::Gt => Instr::Cmp(d, CmpOp::Gt, a, b),
                    B::Ge => Instr::Cmp(d, CmpOp::Ge, a, b),
                    B::And | B::Or => {
                        return Err(LowerError::new(
                            e.span,
                            "internal error: andalso/orelse must be desugared",
                        ))
                    }
                };
                fb.emit(instr);
                Ok(d)
            }
            TExprKind::UnOp { op, operand } => {
                let a = self.lower_expr(fb, operand)?;
                let d = fb.val_slot(e.ty.clone())?;
                match op {
                    tfgc_syntax::UnOp::Neg => fb.emit(Instr::Neg(d, a)),
                    tfgc_syntax::UnOp::Not => fb.emit(Instr::Not(d, a)),
                };
                Ok(d)
            }
            TExprKind::If { cond, then, els } => {
                let c = self.lower_expr(fb, cond)?;
                let d = fb.val_slot(e.ty.clone())?;
                let l_else = fb.new_label();
                let l_end = fb.new_label();
                fb.emit_branch_false(c, l_else);
                let t = self.lower_expr(fb, then)?;
                fb.emit(Instr::Move(d, t));
                fb.emit_jump(l_end);
                fb.bind_label(l_else);
                let f = self.lower_expr(fb, els)?;
                fb.emit(Instr::Move(d, f));
                fb.bind_label(l_end);
                Ok(d)
            }
            TExprKind::Case { scrut, arms } => {
                let s = self.lower_expr(fb, scrut)?;
                let d = fb.val_slot(e.ty.clone())?;
                let l_done = fb.new_label();
                for arm in arms {
                    let l_fail = fb.new_label();
                    self.compile_pat(fb, s, &arm.pat, l_fail)?;
                    let r = self.lower_expr(fb, &arm.body)?;
                    fb.emit(Instr::Move(d, r));
                    fb.emit_jump(l_done);
                    fb.bind_label(l_fail);
                }
                fb.emit(Instr::MatchFail);
                fb.bind_label(l_done);
                Ok(d)
            }
            TExprKind::Let { binds, body } => {
                for b in binds {
                    match b {
                        TLetBind::Val { pat, rhs, .. } => {
                            let r = self.lower_expr(fb, rhs)?;
                            if is_irrefutable(self.tp, pat) {
                                self.compile_pat(fb, r, pat, u32::MAX)?;
                            } else {
                                let l_fail = fb.new_label();
                                let l_ok = fb.new_label();
                                self.compile_pat(fb, r, pat, l_fail)?;
                                fb.emit_jump(l_ok);
                                fb.bind_label(l_fail);
                                fb.emit(Instr::MatchFail);
                                fb.bind_label(l_ok);
                            }
                        }
                        TLetBind::Fun(funs) => {
                            self.lower_let_funs(fb, funs)?;
                        }
                    }
                }
                self.lower_expr(fb, body)
            }
            TExprKind::Lambda {
                param,
                param_ty,
                body,
            } => self.lower_lambda(fb, param, param_ty, body, &e.ty, e.span),
            TExprKind::Seq(a, b) => {
                let _ = self.lower_expr(fb, a)?;
                self.lower_expr(fb, b)
            }
        }
    }

    /// Application spine: direct calls where the callee and full argument
    /// count are known, closure calls otherwise.
    fn lower_app(&mut self, fb: &mut Fb, e: &TExpr) -> LowerResult<Slot> {
        let (base, apps) = collect_spine(e);
        // Builtin print in call position.
        if let TExprKind::Var { name, .. } = &base.kind {
            if name == "print" && fb.local(name).is_none() && !self.global_locs.contains_key(name) {
                let (arg, _) = apps[0];
                let a = self.lower_expr(fb, arg)?;
                fb.emit(Instr::Print(a));
                let d = fb.val_slot(Type::Unit)?;
                fb.emit(Instr::LoadUnit(d));
                // `print x` has type unit; further application is impossible.
                return Ok(d);
            }
        }
        // Known function in call position?
        let direct = match &base.kind {
            TExprKind::Var { name, inst, .. } if fb.local(name).is_none() => {
                match self.global_locs.get(name) {
                    Some(Loc::Fun(g)) => Some((*g, inst.clone().unwrap_or_default())),
                    _ => None,
                }
            }
            _ => None,
        };
        let (mut cur, mut cur_ty, rest_start) = match direct {
            Some((g, inst)) if apps.len() >= self.metas[g.0 as usize].user_arity as usize => {
                let meta = self.metas[g.0 as usize].clone();
                let m = meta.user_arity as usize;
                let mut args = Vec::with_capacity(m + meta.extras.len());
                for (arg, _) in &apps[..m] {
                    args.push(self.lower_expr(fb, arg)?);
                }
                for (name, _) in &meta.extras {
                    let s = fb.local(name).ok_or_else(|| {
                        LowerError::new(
                            e.span,
                            format!("internal error: lifted extra `{name}` not in scope"),
                        )
                    })?;
                    args.push(s);
                }
                let fields = self.desc_fields_of(g);
                let descs = self.emit_desc_args(fb, &fields, meta.scheme_id, &inst)?;
                args.extend(descs);
                let result_ty = apps[m - 1].1.clone();
                let d = fb.val_slot(result_ty.clone())?;
                let site = self.new_site(
                    fb,
                    SiteKind::Direct {
                        callee: g,
                        theta: inst,
                    },
                );
                fb.emit(Instr::CallDirect {
                    dst: d,
                    f: g,
                    args,
                    site,
                });
                (d, result_ty, m)
            }
            _ => {
                let c = self.lower_expr(fb, base)?;
                (c, base.ty.clone(), 0)
            }
        };
        for (arg, res_ty) in &apps[rest_start..] {
            let a = self.lower_expr(fb, arg)?;
            let d = fb.val_slot((*res_ty).clone())?;
            let site = self.new_site(
                fb,
                SiteKind::Closure {
                    clos: cur,
                    clos_ty: cur_ty.clone(),
                },
            );
            fb.emit(Instr::CallClosure {
                dst: d,
                clos: cur,
                arg: a,
                site,
            });
            cur = d;
            cur_ty = (*res_ty).clone();
        }
        Ok(cur)
    }

    /// Materializes a first-class value for direct function `g` at
    /// instantiation `inst`: a closure over the 0-arguments curry wrapper.
    fn make_fn_value(
        &mut self,
        fb: &mut Fb,
        g: FnId,
        inst: &[Type],
        use_ty: &Type,
    ) -> LowerResult<Slot> {
        let meta = self.metas[g.0 as usize].clone();
        let w0 = self.get_wrapper(g, 0)?;
        let mut captures = Vec::new();
        let mut operand_tys = Vec::new();
        for (name, ty) in &meta.extras {
            let s = fb.local(name).ok_or_else(|| {
                LowerError::new(
                    fb.span,
                    format!("internal error: lifted extra `{name}` not in scope"),
                )
            })?;
            captures.push(s);
            operand_tys.push(SlotTy::Val(expand_inst_ty(ty, meta.scheme_id, inst)));
        }
        let fields = self.desc_fields_of(w0);
        let descs = self.emit_desc_args(fb, &fields, meta.scheme_id, inst)?;
        for _ in &descs {
            operand_tys.push(SlotTy::Desc);
        }
        captures.extend(descs);
        self.raw_creations.push((fb.id, w0, inst.to_vec()));
        let d = fb.val_slot(use_ty.clone())?;
        let site = self.new_site(fb, SiteKind::Alloc { operand_tys });
        fb.emit(Instr::MakeClosure {
            dst: d,
            f: w0,
            captures,
            site,
        });
        Ok(d)
    }

    /// The curry wrapper for direct function `g` with `k` user arguments
    /// already captured.
    fn get_wrapper(&mut self, g: FnId, k: u16) -> LowerResult<FnId> {
        if let Some(id) = self.wrappers.get(&(g, k)) {
            return Ok(*id);
        }
        let meta = self.metas[g.0 as usize].clone();
        let id = self.reserve(FnMeta {
            scheme_id: meta.scheme_id,
            scheme_params: meta.scheme_params,
            user_arity: 1,
            user_param_tys: vec![meta.user_param_tys[k as usize].clone()],
            ret_ty: meta.ret_ty.clone(),
            extras: Vec::new(),
        });
        self.wrappers.insert((g, k), id);

        let arity = meta.user_arity;
        let arrow = Type::arrow_n(
            meta.user_param_tys[k as usize..].iter().cloned(),
            meta.ret_ty.clone(),
        );
        let name = format!("wrap{}${k}", g.0);
        let mut fb = Fb::new(
            id,
            name,
            FnKind::ClosureEntered,
            arrow.clone(),
            if k + 1 == arity {
                meta.ret_ty.clone()
            } else {
                Type::arrow_n(
                    meta.user_param_tys[(k + 1) as usize..].iter().cloned(),
                    meta.ret_ty.clone(),
                )
            },
            Span::SYNTH,
        );
        let self_slot = fb.val_slot(arrow)?;
        let arg_slot = fb.val_slot(meta.user_param_tys[k as usize].clone())?;
        fb.n_params = 2;

        // Unpack environment: extras, previously captured args, descriptors.
        let mut field_idx: u16 = 1; // field 0 is the function id
        let mut extras_slots = Vec::new();
        for (_, ty) in &meta.extras {
            let s = fb.val_slot(ty.clone())?;
            fb.emit(Instr::GetField(s, self_slot, field_idx));
            fb.captures.push(SlotTy::Val(ty.clone()));
            extras_slots.push(s);
            field_idx += 1;
        }
        let mut arg_slots = Vec::new();
        for j in 0..k {
            let ty = meta.user_param_tys[j as usize].clone();
            let s = fb.val_slot(ty.clone())?;
            fb.emit(Instr::GetField(s, self_slot, field_idx));
            fb.captures.push(SlotTy::Val(ty));
            arg_slots.push(s);
            field_idx += 1;
        }
        let desc_fields = self.desc_fields_of(id);
        for q in &desc_fields {
            let s = fb.new_slot(SlotTy::Desc)?;
            fb.emit(Instr::GetField(s, self_slot, field_idx));
            fb.captures.push(SlotTy::Desc);
            fb.desc_map.push((*q, s));
            field_idx += 1;
        }
        fb.desc_fields = desc_fields;

        let identity: Vec<Type> = (0..meta.scheme_params)
            .map(|i| {
                Type::Param(ParamId {
                    scheme: meta.scheme_id,
                    index: i,
                })
            })
            .collect();

        if k + 1 == arity {
            // Full application: call g directly.
            let mut args = arg_slots;
            args.push(arg_slot);
            args.extend(extras_slots);
            let g_fields = self.desc_fields_of(g);
            let descs = self.emit_desc_args(&mut fb, &g_fields, meta.scheme_id, &identity)?;
            args.extend(descs);
            let d = fb.val_slot(meta.ret_ty.clone())?;
            let site = self.new_site(
                &fb,
                SiteKind::Direct {
                    callee: g,
                    theta: identity,
                },
            );
            fb.emit(Instr::CallDirect {
                dst: d,
                f: g,
                args,
                site,
            });
            fb.emit(Instr::Return(d));
        } else {
            // Partial: build the next wrapper's closure.
            let next = self.get_wrapper(g, k + 1)?;
            let mut captures = Vec::new();
            let mut operand_tys = Vec::new();
            for (s, (_, ty)) in extras_slots.iter().zip(&meta.extras) {
                captures.push(*s);
                operand_tys.push(SlotTy::Val(ty.clone()));
            }
            for (j, s) in arg_slots.iter().enumerate() {
                captures.push(*s);
                operand_tys.push(SlotTy::Val(meta.user_param_tys[j].clone()));
            }
            captures.push(arg_slot);
            operand_tys.push(SlotTy::Val(meta.user_param_tys[k as usize].clone()));
            let next_fields = self.desc_fields_of(next);
            let descs = self.emit_desc_args(&mut fb, &next_fields, meta.scheme_id, &identity)?;
            for _ in &descs {
                operand_tys.push(SlotTy::Desc);
            }
            captures.extend(descs);
            self.raw_creations.push((id, next, identity));
            let d = fb.val_slot(fb.ret_ty.clone())?;
            let site = self.new_site(&fb, SiteKind::Alloc { operand_tys });
            fb.emit(Instr::MakeClosure {
                dst: d,
                f: next,
                captures,
                site,
            });
            fb.emit(Instr::Return(d));
        }
        let fun = self.finish_fun(fb)?;
        self.funs[id.0 as usize] = Some(fun);
        Ok(id)
    }

    /// The direct function implementing builtin `print` when used as a
    /// first-class value.
    fn get_print_fn(&mut self) -> LowerResult<FnId> {
        if let Some(id) = self.print_fn {
            return Ok(id);
        }
        let id = self.reserve(FnMeta {
            scheme_id: DUMMY_SCHEME,
            scheme_params: 0,
            user_arity: 1,
            user_param_tys: vec![Type::Int],
            ret_ty: Type::Unit,
            extras: Vec::new(),
        });
        self.print_fn = Some(id);
        let mut fb = Fb::new(
            id,
            "print".to_string(),
            FnKind::Direct,
            Type::arrow(Type::Int, Type::Unit),
            Type::Unit,
            Span::SYNTH,
        );
        let a = fb.val_slot(Type::Int)?;
        fb.n_params = 1;
        fb.emit(Instr::Print(a));
        let d = fb.val_slot(Type::Unit)?;
        fb.emit(Instr::LoadUnit(d));
        fb.emit(Instr::Return(d));
        let fun = self.finish_fun(fb)?;
        self.funs[id.0 as usize] = Some(fun);
        Ok(id)
    }

    /// Compiles a `let fun` group: lifts free variables as extra
    /// parameters, registers the members, compiles their bodies.
    fn lower_let_funs(&mut self, fb: &mut Fb, funs: &[TFun]) -> LowerResult<()> {
        // Free names over all member bodies, resolvable in the current frame.
        let mut names: Vec<String> = Vec::new();
        for f in funs {
            self.collect_free(&f.body, fb, &mut names);
        }
        let extras: Vec<(String, Type)> = names
            .into_iter()
            .map(|n| {
                let s = fb.local(&n).expect("collected names are local");
                let ty = fb.slot_val_ty(s)?;
                Ok((n, ty))
            })
            .collect::<LowerResult<_>>()?;
        let ids: Vec<FnId> = funs
            .iter()
            .map(|f| {
                let id = self.reserve(FnMeta {
                    scheme_id: f.scheme.id,
                    scheme_params: f.scheme.num_params,
                    user_arity: f.params.len() as u16,
                    user_param_tys: f.params.iter().map(|(_, t)| t.clone()).collect(),
                    ret_ty: f.ret.clone(),
                    extras: extras.clone(),
                });
                self.global_locs.insert(f.name.clone(), Loc::Fun(id));
                id
            })
            .collect();
        for (f, id) in funs.iter().zip(&ids) {
            let fun = self.compile_direct(*id, f, &extras)?;
            self.funs[id.0 as usize] = Some(fun);
        }
        Ok(())
    }

    /// Collects names used in `e` that resolve to locals of the *current*
    /// frame (directly, or as lifted extras of referenced `let fun`s).
    /// Names are unique post alpha-renaming, so no binder tracking is
    /// needed.
    fn collect_free(&self, e: &TExpr, fb: &Fb, out: &mut Vec<String>) {
        let push = |n: &str, out: &mut Vec<String>| {
            if !out.iter().any(|x| x == n) {
                out.push(n.to_string());
            }
        };
        match &e.kind {
            TExprKind::Var { name, .. } => {
                if fb.local(name).is_some() {
                    push(name, out);
                } else if let Some(Loc::Fun(g)) = self.global_locs.get(name) {
                    for (en, _) in &self.metas[g.0 as usize].extras {
                        if fb.local(en).is_some() {
                            push(en, out);
                        }
                    }
                }
            }
            TExprKind::Int(_) | TExprKind::Bool(_) | TExprKind::Unit => {}
            TExprKind::Tuple(es) | TExprKind::Ctor { args: es, .. } => {
                for x in es {
                    self.collect_free(x, fb, out);
                }
            }
            TExprKind::Proj { tuple, .. } => self.collect_free(tuple, fb, out),
            TExprKind::App { f, arg } => {
                self.collect_free(f, fb, out);
                self.collect_free(arg, fb, out);
            }
            TExprKind::BinOp { lhs, rhs, .. } => {
                self.collect_free(lhs, fb, out);
                self.collect_free(rhs, fb, out);
            }
            TExprKind::UnOp { operand, .. } => self.collect_free(operand, fb, out),
            TExprKind::If { cond, then, els } => {
                self.collect_free(cond, fb, out);
                self.collect_free(then, fb, out);
                self.collect_free(els, fb, out);
            }
            TExprKind::Case { scrut, arms } => {
                self.collect_free(scrut, fb, out);
                for a in arms {
                    self.collect_free(&a.body, fb, out);
                }
            }
            TExprKind::Let { binds, body } => {
                for b in binds {
                    match b {
                        TLetBind::Val { rhs, .. } => self.collect_free(rhs, fb, out),
                        TLetBind::Fun(fs) => {
                            for f in fs {
                                self.collect_free(&f.body, fb, out);
                            }
                        }
                    }
                }
                self.collect_free(body, fb, out);
            }
            TExprKind::Lambda { body, .. } => self.collect_free(body, fb, out),
            TExprKind::Seq(a, b) => {
                self.collect_free(a, fb, out);
                self.collect_free(b, fb, out);
            }
        }
    }

    /// Compiles a lambda to a closure-entered function and emits its
    /// creation in the current frame.
    fn lower_lambda(
        &mut self,
        fb: &mut Fb,
        param: &str,
        param_ty: &Type,
        body: &TExpr,
        node_ty: &Type,
        span: Span,
    ) -> LowerResult<Slot> {
        let mut cap_names: Vec<String> = Vec::new();
        self.collect_free(body, fb, &mut cap_names);
        let caps: Vec<(String, Type)> = cap_names
            .into_iter()
            .map(|n| {
                let s = fb.local(&n).expect("captures are local");
                let ty = fb.slot_val_ty(s)?;
                Ok((n, ty))
            })
            .collect::<LowerResult<_>>()?;

        let id = self.reserve(FnMeta {
            scheme_id: DUMMY_SCHEME,
            scheme_params: 0,
            user_arity: 1,
            user_param_tys: vec![param_ty.clone()],
            ret_ty: body.ty.clone(),
            extras: Vec::new(),
        });

        // Compile the lambda body in its own builder.
        {
            let mut lb = Fb::new(
                id,
                format!("lambda@{}", span.start),
                FnKind::ClosureEntered,
                node_ty.clone(),
                body.ty.clone(),
                span,
            );
            let self_slot = lb.val_slot(node_ty.clone())?;
            let arg_slot = lb.val_slot(param_ty.clone())?;
            lb.n_params = 2;
            lb.locals.insert(param.to_string(), arg_slot);
            let mut field_idx: u16 = 1;
            for (n, ty) in &caps {
                let s = lb.val_slot(ty.clone())?;
                lb.emit(Instr::GetField(s, self_slot, field_idx));
                lb.captures.push(SlotTy::Val(ty.clone()));
                lb.locals.insert(n.clone(), s);
                field_idx += 1;
            }
            let desc_fields = self.desc_fields_of(id);
            for q in &desc_fields {
                let s = lb.new_slot(SlotTy::Desc)?;
                lb.emit(Instr::GetField(s, self_slot, field_idx));
                lb.captures.push(SlotTy::Desc);
                lb.desc_map.push((*q, s));
                field_idx += 1;
            }
            lb.desc_fields = desc_fields;
            let r = self.lower_expr(&mut lb, body)?;
            lb.emit(Instr::Return(r));
            let fun = self.finish_fun(lb)?;
            self.funs[id.0 as usize] = Some(fun);
        }

        // Emit the creation in the parent.
        let mut captures = Vec::new();
        let mut operand_tys = Vec::new();
        for (n, ty) in &caps {
            let s = fb.local(n).expect("captures are local");
            captures.push(s);
            operand_tys.push(SlotTy::Val(ty.clone()));
        }
        let fields = self.desc_fields_of(id);
        let descs = self.emit_desc_args(fb, &fields, DUMMY_SCHEME, &[])?;
        for _ in &descs {
            operand_tys.push(SlotTy::Desc);
        }
        captures.extend(descs);
        self.raw_creations.push((fb.id, id, Vec::new()));
        let d = fb.val_slot(node_ty.clone())?;
        let site = self.new_site(fb, SiteKind::Alloc { operand_tys });
        fb.emit(Instr::MakeClosure {
            dst: d,
            f: id,
            captures,
            site,
        });
        Ok(d)
    }

    /// Compiles a pattern match against the value in `s`, jumping to
    /// `fail` on mismatch and binding pattern variables on success.
    /// `fail == u32::MAX` asserts the pattern is irrefutable.
    fn compile_pat(&mut self, fb: &mut Fb, s: Slot, pat: &TPat, fail: u32) -> LowerResult<()> {
        match &pat.kind {
            TPatKind::Wild | TPatKind::Unit => Ok(()),
            TPatKind::Var(v) => {
                fb.locals.insert(v.clone(), s);
                Ok(())
            }
            TPatKind::Int(n) => {
                fb.emit_branch_int_ne(s, *n, fail);
                Ok(())
            }
            TPatKind::Bool(b) => {
                fb.emit_branch_int_ne(s, i64::from(*b), fail);
                Ok(())
            }
            TPatKind::Tuple(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    let d = fb.val_slot(p.ty.clone())?;
                    fb.emit(Instr::GetField(d, s, i as u16));
                    self.compile_pat(fb, d, p, fail)?;
                }
                Ok(())
            }
            TPatKind::Ctor { data, tag, args } => {
                let n_ctors = self.tp.data_env.def(*data).ctors.len();
                if n_ctors > 1 {
                    fb.emit_branch_tag_ne(s, *data, *tag, fail);
                }
                let rep = self.ctor_reps[data.0 as usize][*tag as usize];
                if let CtorRep::Ptr { .. } = rep {
                    for (i, p) in args.iter().enumerate() {
                        let d = fb.val_slot(p.ty.clone())?;
                        fb.emit(Instr::GetField(d, s, rep.field_offset(i as u16)));
                        self.compile_pat(fb, d, p, fail)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Expands raw instantiation vectors into frame-parameter-aligned θs
    /// and assembles the program.
    fn finalize(mut self, main: FnId) -> LowerResult<(IrProgram, Vec<Creation>)> {
        let funs: Vec<IrFun> = self
            .funs
            .into_iter()
            .map(|f| f.expect("all reserved functions compiled"))
            .collect();
        for site in &mut self.sites {
            if let SiteKind::Direct { callee, theta } = &mut site.kind {
                let meta = &self.metas[callee.0 as usize];
                let inst = std::mem::take(theta);
                *theta = funs[callee.0 as usize]
                    .frame_params
                    .iter()
                    .map(|q| expand_inst(*q, meta.scheme_id, &inst))
                    .collect();
            }
        }
        let creations: Vec<Creation> = self
            .raw_creations
            .iter()
            .map(|(creator, target, inst)| {
                let meta = &self.metas[target.0 as usize];
                Creation {
                    creator: *creator,
                    target: *target,
                    theta: funs[target.0 as usize]
                        .frame_params
                        .iter()
                        .map(|q| expand_inst(*q, meta.scheme_id, inst))
                        .collect(),
                }
            })
            .collect();
        let mut opaque: Vec<SchemeId> = self.opaque.iter().copied().collect();
        opaque.sort();
        let prog = IrProgram {
            data_env: self.tp.data_env.clone(),
            ctor_reps: compute_ctor_reps(&self.tp.data_env),
            funs,
            globals: self.globals,
            sites: self.sites,
            desc_templates: self.desc_templates,
            main,
            main_ty: self.tp.main.ty.clone(),
            opaque_schemes: opaque,
        };
        Ok((prog, creations))
    }
}

/// Instantiates parameter `q`: parameters of `scheme` map through `inst`,
/// everything else passes through.
fn expand_inst(q: ParamId, scheme: SchemeId, inst: &[Type]) -> Type {
    if q.scheme == scheme && (q.index as usize) < inst.len() {
        inst[q.index as usize].clone()
    } else {
        Type::Param(q)
    }
}

/// Applies [`expand_inst`] over a whole type.
fn expand_inst_ty(ty: &Type, scheme: SchemeId, inst: &[Type]) -> Type {
    ty.map_params(&mut |q| expand_inst(q, scheme, inst))
}

/// First-occurrence path of `q` in `ty` (child indices), if present.
fn find_param_path(ty: &Type, q: ParamId) -> Option<Vec<u16>> {
    fn go(ty: &Type, q: ParamId, path: &mut Vec<u16>) -> bool {
        match ty {
            Type::Param(p) => *p == q,
            Type::Tuple(ts) | Type::Data(_, ts) => {
                for (i, t) in ts.iter().enumerate() {
                    path.push(i as u16);
                    if go(t, q, path) {
                        return true;
                    }
                    path.pop();
                }
                false
            }
            Type::Arrow(a, b) => {
                path.push(0);
                if go(a, q, path) {
                    return true;
                }
                path.pop();
                path.push(1);
                if go(b, q, path) {
                    return true;
                }
                path.pop();
                false
            }
            _ => false,
        }
    }
    let mut path = Vec::new();
    if go(ty, q, &mut path) {
        Some(path)
    } else {
        None
    }
}

/// Is the pattern guaranteed to match any value of its type?
fn is_irrefutable(tp: &TProgram, pat: &TPat) -> bool {
    match &pat.kind {
        TPatKind::Wild | TPatKind::Var(_) | TPatKind::Unit => true,
        TPatKind::Int(_) | TPatKind::Bool(_) => false,
        TPatKind::Tuple(ps) => ps.iter().all(|p| is_irrefutable(tp, p)),
        TPatKind::Ctor { data, args, .. } => {
            tp.data_env.def(*data).ctors.len() == 1 && args.iter().all(|p| is_irrefutable(tp, p))
        }
    }
}

/// Splits an application spine: `f a b c` gives `(f, [(a, ty1), (b, ty2),
/// (c, ty3)])` where `tyN` is the result type after `N` applications.
fn collect_spine(e: &TExpr) -> (&TExpr, Vec<(&TExpr, &Type)>) {
    match &e.kind {
        TExprKind::App { f, arg } => {
            let (base, mut apps) = collect_spine(f);
            apps.push((arg, &e.ty));
            (base, apps)
        }
        _ => (e, Vec::new()),
    }
}
