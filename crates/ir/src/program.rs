//! Compiled program representation: functions, frame layouts, call sites.

use crate::instr::{CallSiteId, DescTemplateId, FnId, GlobalId, Instr, Slot, SlotTy};
use tfgc_syntax::Span;
use tfgc_types::{DataEnv, DataId, ParamId, SchemeId, Type};

/// Values below this limit are immediate constructor representations (a
/// nullary constructor's tag, a bool, unit); heap indices start at or above
/// it, so a "pointer or immediate?" test needs no tag bit — exactly how
/// Goldberg's `cons_cell` distinguishes `NULL` from a real cell (§2.4).
pub const IMM_LIMIT: u64 = 4096;

/// Runtime representation of one constructor.
///
/// List-like layout optimization, matching the paper's two-word
/// `cons_cell`: nullary constructors are immediates; a constructor with
/// fields is a pointer to its fields, prefixed by a discriminant word only
/// when the datatype has more than one constructor with fields (§2.3's
/// variant-record discriminant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtorRep {
    /// Value represented immediately as this small integer.
    Imm(u32),
    /// Heap object: optional discriminant word, then `n_fields` words.
    Ptr {
        /// Discriminant stored in the first word, when needed.
        tag: Option<u32>,
        n_fields: u16,
    },
}

impl CtorRep {
    /// Word offset of field `i` within the heap object.
    pub fn field_offset(&self, i: u16) -> u16 {
        match self {
            CtorRep::Imm(_) => panic!("immediate constructor has no fields"),
            CtorRep::Ptr { tag, .. } => i + u16::from(tag.is_some()),
        }
    }

    /// Heap words occupied by a value of this constructor (0 for
    /// immediates).
    pub fn heap_words(&self) -> usize {
        match self {
            CtorRep::Imm(_) => 0,
            CtorRep::Ptr { tag, n_fields } => usize::from(*n_fields) + usize::from(tag.is_some()),
        }
    }
}

/// Computes the representation of every constructor of `data_env`.
pub fn compute_ctor_reps(data_env: &DataEnv) -> Vec<Vec<CtorRep>> {
    data_env
        .iter()
        .map(|(_, def)| {
            let n_ptr = def.ctors.iter().filter(|c| !c.fields.is_empty()).count();
            let mut next_imm = 0u32;
            let mut next_tag = 0u32;
            def.ctors
                .iter()
                .map(|c| {
                    if c.fields.is_empty() {
                        let r = CtorRep::Imm(next_imm);
                        next_imm += 1;
                        r
                    } else {
                        let tag = if n_ptr > 1 {
                            let t = next_tag;
                            next_tag += 1;
                            Some(t)
                        } else {
                            None
                        };
                        CtorRep::Ptr {
                            tag,
                            n_fields: c.fields.len() as u16,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// How a function is entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// Called by name with all arguments at once (top-level and `let fun`
    /// functions after lambda lifting).
    Direct,
    /// Entered through a closure: slot 0 receives the closure itself,
    /// slot 1 the single argument (lambdas and curry wrappers).
    ClosureEntered,
}

/// Where a closure-entered frame's generic-parameter type routine comes
/// from at collection time.
///
/// For `Direct` functions every parameter is `CallerTheta`: the caller's
/// frame routine evaluates the static instantiation θ recorded at the call
/// site and passes the result — Goldberg §3's
/// `next_gc(p->next_frame, arg1_gc, ..., argn_gc)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamSource {
    /// Locally quantified value parameter: traced as opaque (sound by
    /// parametricity — see DESIGN.md).
    Opaque,
    /// Passed by the caller's frame routine (static θ at the site).
    CallerTheta,
    /// Extracted from the dynamic type routine of the closure being
    /// entered, at this path into the type structure — the paper's "the
    /// type_gc_routine for x can be extracted from the closure" (§3).
    ArrowPath(Vec<u16>),
    /// Evaluated from the runtime type descriptor stored in this frame
    /// slot (the completion mechanism for captures whose types the
    /// closure's own type does not determine; see DESIGN.md).
    DescSlot(Slot),
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct IrFun {
    pub name: String,
    pub kind: FnKind,
    pub code: Vec<Instr>,
    /// Types of all frame slots; the first `n_params` are filled by the
    /// caller.
    pub slots: Vec<SlotTy>,
    pub n_params: u16,
    /// Generic parameters occurring in this frame's slot types, in a
    /// deterministic order. The frame GC routine is parameterized by one
    /// type routine per entry (§3).
    pub frame_params: Vec<ParamId>,
    /// Aligned with `frame_params`.
    pub param_source: Vec<ParamSource>,
    /// The function's type as its callers see it (for closure-entered
    /// functions, the `arg -> result` arrow used for `ArrowPath`
    /// extraction).
    pub arrow_ty: Type,
    /// Closure field types (closure-entered only), in environment order —
    /// the layout behind the paper's "word at `code - 4`" closure routine
    /// (§2.2). Hidden descriptor fields appear at the end as
    /// [`SlotTy::Desc`] entries.
    pub captures: Vec<SlotTy>,
    /// Which generic parameter each trailing descriptor field describes
    /// (closure-entered), or which descriptors arrive as trailing
    /// arguments (direct).
    pub desc_fields: Vec<ParamId>,
    /// Frame slots holding the runtime descriptors after function entry,
    /// consulted by [`Instr::EvalDesc`] and by frame routines for
    /// [`ParamSource::DescSlot`] parameters.
    pub desc_param_slots: Vec<(ParamId, Slot)>,
    pub ret_ty: Type,
    pub span: Span,
}

impl IrFun {
    /// The slot type, panicking on out-of-range (validated at build time).
    pub fn slot_ty(&self, s: Slot) -> &SlotTy {
        &self.slots[s.0 as usize]
    }
}

/// What kind of event a call site is.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteKind {
    /// Direct call. `theta` instantiates each of the callee's
    /// `frame_params` as a type over the *caller's* frame params.
    Direct { callee: FnId, theta: Vec<Type> },
    /// Closure call. `clos_ty` is the static (caller-relative) type of the
    /// closure being invoked.
    Closure { clos: Slot, clos_ty: Type },
    /// Allocation (a call to a predefined allocating procedure in the
    /// paper's model). `operand_tys` are the types of the instruction's
    /// field slots — the "parameters of the allocation primitive", which
    /// the collector must trace and relocate itself (§2.4: "int_cons will
    /// trace its parameters").
    Alloc { operand_tys: Vec<SlotTy> },
}

/// One call site: an instruction in some function that can trigger GC.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub id: CallSiteId,
    pub fn_id: FnId,
    pub pc: u32,
    pub kind: SiteKind,
}

/// A global variable (top-level `val`).
#[derive(Debug, Clone)]
pub struct GlobalInfo {
    pub name: String,
    /// The global's type; generic parameters in it are traced as opaque
    /// (a polymorphic global value cannot store anything at a
    /// parameter-typed position — parametricity).
    pub ty: Type,
}

/// A complete compiled program.
#[derive(Debug, Clone)]
pub struct IrProgram {
    pub data_env: DataEnv,
    /// Per-datatype constructor representations.
    pub ctor_reps: Vec<Vec<CtorRep>>,
    pub funs: Vec<IrFun>,
    pub globals: Vec<GlobalInfo>,
    pub sites: Vec<CallSite>,
    /// Types compiled into [`Instr::EvalDesc`] instructions.
    pub desc_templates: Vec<Type>,
    /// Entry function (globals are initialized in its prefix).
    pub main: FnId,
    /// Result type of the program (for rendering the final value).
    pub main_ty: Type,
    /// Schemes whose parameters are locally quantified values (generalized
    /// `val`s and globals); the collector traces them as opaque — by
    /// parametricity no reachable value sits at such a parameter's type.
    pub opaque_schemes: Vec<SchemeId>,
}

impl IrProgram {
    /// The function with the given id.
    pub fn fun(&self, id: FnId) -> &IrFun {
        &self.funs[id.0 as usize]
    }

    /// The call site with the given id.
    pub fn site(&self, id: CallSiteId) -> &CallSite {
        &self.sites[id.0 as usize]
    }

    /// Representation of constructor `ctor` of `data`.
    pub fn ctor_rep(&self, data: DataId, ctor: u32) -> CtorRep {
        self.ctor_reps[data.0 as usize][ctor as usize]
    }

    /// The descriptor template type.
    pub fn desc_template(&self, id: DescTemplateId) -> &Type {
        &self.desc_templates[id.0 as usize]
    }

    /// The global with the given id.
    pub fn global(&self, id: GlobalId) -> &GlobalInfo {
        &self.globals[id.0 as usize]
    }

    /// Total number of bytecode instructions.
    pub fn code_len(&self) -> usize {
        self.funs.iter().map(|f| f.code.len()).sum()
    }

    /// Structural well-formedness check: jump targets, slot bounds, site
    /// table consistency. Used by tests and debug builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed item found.
    pub fn validate(&self) -> Result<(), String> {
        for (fi, f) in self.funs.iter().enumerate() {
            let n = f.code.len() as u32;
            if f.slots.len() > u16::MAX as usize {
                return Err(format!("function {fi} has too many slots"));
            }
            for (pc, ins) in f.code.iter().enumerate() {
                for succ in ins.successors(pc as u32) {
                    if succ >= n && !matches!(ins, Instr::Return(_) | Instr::MatchFail) {
                        return Err(format!(
                            "function {} pc {pc}: jump target {succ} out of range {n}",
                            f.name
                        ));
                    }
                }
                let check_slot = |s: Slot| {
                    if (s.0 as usize) < f.slots.len() {
                        Ok(())
                    } else {
                        Err(format!(
                            "function {} pc {pc}: slot {} out of range {}",
                            f.name,
                            s.0,
                            f.slots.len()
                        ))
                    }
                };
                for s in ins.uses() {
                    check_slot(s)?;
                }
                if let Some(d) = ins.def() {
                    check_slot(d)?;
                }
                if let Some(site) = ins.site() {
                    let cs = self
                        .sites
                        .get(site.0 as usize)
                        .ok_or_else(|| format!("unknown call site {}", site.0))?;
                    if cs.fn_id.0 as usize != fi || cs.pc != pc as u32 {
                        return Err(format!(
                            "call site {} registered at ({}, {}) but used at ({fi}, {pc})",
                            site.0, cs.fn_id.0, cs.pc
                        ));
                    }
                }
            }
            if f.frame_params.len() != f.param_source.len() {
                return Err(format!("function {}: param_source length mismatch", f.name));
            }
            // Last instruction must terminate.
            match f.code.last() {
                Some(Instr::Return(_)) | Some(Instr::Jump(_)) | Some(Instr::MatchFail) => {}
                other => {
                    return Err(format!(
                        "function {} does not end in a terminator: {other:?}",
                        f.name
                    ))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_types::{CtorDef, DataDef};

    #[test]
    fn list_gets_paper_cons_layout() {
        let env = DataEnv::new();
        let reps = compute_ctor_reps(&env);
        // Nil immediate 0, Cons two-word pointer without discriminant.
        assert_eq!(reps[0][0], CtorRep::Imm(0));
        assert_eq!(
            reps[0][1],
            CtorRep::Ptr {
                tag: None,
                n_fields: 2
            }
        );
        assert_eq!(reps[0][1].heap_words(), 2);
        assert_eq!(reps[0][1].field_offset(1), 1);
    }

    #[test]
    fn multi_ctor_datatype_gets_discriminants() {
        let mut env = DataEnv::new();
        env.insert(DataDef {
            name: "shape".into(),
            arity: 0,
            ctors: vec![
                CtorDef {
                    name: "Circle".into(),
                    tag: 0,
                    fields: vec![Type::Int],
                },
                CtorDef {
                    name: "Rect".into(),
                    tag: 1,
                    fields: vec![Type::Int, Type::Int],
                },
                CtorDef {
                    name: "Point".into(),
                    tag: 2,
                    fields: vec![],
                },
            ],
        });
        let reps = compute_ctor_reps(&env);
        assert_eq!(
            reps[1][0],
            CtorRep::Ptr {
                tag: Some(0),
                n_fields: 1
            }
        );
        assert_eq!(
            reps[1][1],
            CtorRep::Ptr {
                tag: Some(1),
                n_fields: 2
            }
        );
        assert_eq!(reps[1][2], CtorRep::Imm(0));
        // Field offsets skip the discriminant.
        assert_eq!(reps[1][1].field_offset(0), 1);
        assert_eq!(reps[1][1].heap_words(), 3);
    }

    #[test]
    fn enum_datatype_is_all_immediate() {
        let mut env = DataEnv::new();
        env.insert(DataDef {
            name: "color".into(),
            arity: 0,
            ctors: vec![
                CtorDef {
                    name: "R".into(),
                    tag: 0,
                    fields: vec![],
                },
                CtorDef {
                    name: "G".into(),
                    tag: 1,
                    fields: vec![],
                },
            ],
        });
        let reps = compute_ctor_reps(&env);
        assert_eq!(reps[1], vec![CtorRep::Imm(0), CtorRep::Imm(1)]);
    }
}
