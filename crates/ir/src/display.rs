//! Human-readable disassembly of compiled programs (debugging aid; also
//! exercised by tests to keep instruction coverage honest).

use crate::instr::{Instr, SlotTy};
use crate::program::{FnKind, IrProgram, SiteKind};
use std::fmt::Write as _;

/// Renders one function as assembly-style text.
pub fn disasm_fun(p: &IrProgram, idx: usize) -> String {
    let f = &p.funs[idx];
    let mut out = String::new();
    let kind = match f.kind {
        FnKind::Direct => "direct",
        FnKind::ClosureEntered => "closure",
    };
    let _ = writeln!(
        out,
        "fn {} [{kind}] params={} slots={} frame_params={}",
        f.name,
        f.n_params,
        f.slots.len(),
        f.frame_params.len()
    );
    for (i, s) in f.slots.iter().enumerate() {
        let t = match s {
            SlotTy::Val(t) => t.to_string(),
            SlotTy::Desc => "<desc>".to_string(),
        };
        let _ = writeln!(out, "  s{i}: {t}");
    }
    for (pc, ins) in f.code.iter().enumerate() {
        let _ = writeln!(out, "  {pc:4}: {}", disasm_instr(p, ins));
    }
    out
}

/// Renders the whole program.
pub fn disasm(p: &IrProgram) -> String {
    let mut out = String::new();
    for i in 0..p.funs.len() {
        out.push_str(&disasm_fun(p, i));
        out.push('\n');
    }
    out
}

fn disasm_instr(p: &IrProgram, ins: &Instr) -> String {
    match ins {
        Instr::LoadInt(d, n) => format!("s{} <- {n}", d.0),
        Instr::LoadBool(d, b) => format!("s{} <- {b}", d.0),
        Instr::LoadUnit(d) => format!("s{} <- ()", d.0),
        Instr::LoadGlobal(d, g) => format!("s{} <- global {}", d.0, p.globals[g.0 as usize].name),
        Instr::StoreGlobal(g, s) => {
            format!("global {} <- s{}", p.globals[g.0 as usize].name, s.0)
        }
        Instr::Move(d, s) => format!("s{} <- s{}", d.0, s.0),
        Instr::Arith(d, op, a, b) => format!("s{} <- s{} {op:?} s{}", d.0, a.0, b.0),
        Instr::Cmp(d, op, a, b) => format!("s{} <- s{} {op:?} s{}", d.0, a.0, b.0),
        Instr::Neg(d, a) => format!("s{} <- neg s{}", d.0, a.0),
        Instr::Not(d, a) => format!("s{} <- not s{}", d.0, a.0),
        Instr::Jump(t) => format!("jump {t}"),
        Instr::BranchFalse(s, t) => format!("if !s{} jump {t}", s.0),
        Instr::BranchIntNe(s, n, t) => format!("if s{} != {n} jump {t}", s.0),
        Instr::BranchTagNe {
            obj,
            data,
            ctor,
            target,
        } => {
            let name = &p.data_env.def(*data).ctors[*ctor as usize].name;
            format!("if s{} not {name} jump {target}", obj.0)
        }
        Instr::GetField(d, o, i) => format!("s{} <- s{}[{i}]", d.0, o.0),
        Instr::MakeTuple { dst, elems, site } => {
            format!("s{} <- tuple({}) @site{}", dst.0, slots(elems), site.0)
        }
        Instr::MakeData {
            dst,
            data,
            ctor,
            fields,
            site,
        } => {
            let name = &p.data_env.def(*data).ctors[*ctor as usize].name;
            format!("s{} <- {name}({}) @site{}", dst.0, slots(fields), site.0)
        }
        Instr::MakeClosure {
            dst,
            f,
            captures,
            site,
        } => format!(
            "s{} <- closure {} [{}] @site{}",
            dst.0,
            p.funs[f.0 as usize].name,
            slots(captures),
            site.0
        ),
        Instr::EvalDesc { dst, template } => {
            format!(
                "s{} <- desc {}",
                dst.0, p.desc_templates[template.0 as usize]
            )
        }
        Instr::CallDirect { dst, f, args, site } => format!(
            "s{} <- call {}({}) @site{}",
            dst.0,
            p.funs[f.0 as usize].name,
            slots(args),
            site.0
        ),
        Instr::CallClosure {
            dst,
            clos,
            arg,
            site,
        } => format!(
            "s{} <- callclos s{}(s{}) @site{}",
            dst.0, clos.0, arg.0, site.0
        ),
        Instr::Return(s) => format!("return s{}", s.0),
        Instr::Print(s) => format!("print s{}", s.0),
        Instr::MatchFail => "matchfail".to_string(),
    }
}

fn slots(ss: &[crate::instr::Slot]) -> String {
    ss.iter()
        .map(|s| format!("s{}", s.0))
        .collect::<Vec<_>>()
        .join(", ")
}

/// One-line summary of a call site (used in experiment reports).
pub fn describe_site(p: &IrProgram, idx: usize) -> String {
    let s = &p.sites[idx];
    let fname = &p.funs[s.fn_id.0 as usize].name;
    match &s.kind {
        SiteKind::Direct { callee, .. } => format!(
            "site{} {fname}:{} call {}",
            idx, s.pc, p.funs[callee.0 as usize].name
        ),
        SiteKind::Closure { clos, .. } => {
            format!("site{} {fname}:{} callclos s{}", idx, s.pc, clos.0)
        }
        SiteKind::Alloc { operand_tys } => {
            format!("site{} {fname}:{} alloc/{}", idx, s.pc, operand_tys.len())
        }
    }
}
