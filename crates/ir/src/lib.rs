//! # tfgc-ir — bytecode and lowering for the tag-free GC reproduction
//!
//! Compiles the typed AST of [`tfgc_types`] into a slot-machine bytecode
//! whose activation records are fully described at every call site: slot
//! types, the callee instantiation θ, and (for the polymorphic cases the
//! 1991 paper leaves open) hidden runtime type descriptors. The GC
//! metadata generators in `tfgc-gc` are driven entirely by this
//! representation.
//!
//! ```
//! use tfgc_syntax::parse_program;
//! use tfgc_types::elaborate;
//! use tfgc_ir::lower;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let typed = elaborate(&parse_program(
//!     "fun double x = x + x ; double 21",
//! )?)?;
//! let prog = lower(&typed)?;
//! assert!(prog.validate().is_ok());
//! // `double` plus `main`.
//! assert_eq!(prog.funs.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod alpha;
pub mod display;
pub mod instr;
pub mod lower;
pub mod program;
pub mod rtti;

pub use instr::{ArithOp, CallSiteId, CmpOp, DescTemplateId, FnId, GlobalId, Instr, Slot, SlotTy};
pub use lower::{lower, lower_full, LowerError, LowerResult};
pub use program::{
    compute_ctor_reps, CallSite, CtorRep, FnKind, GlobalInfo, IrFun, IrProgram, ParamSource,
    SiteKind, IMM_LIMIT,
};
pub use rtti::{Creation, RttiInfo};

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_syntax::parse_program;
    use tfgc_types::{elaborate, Type};

    fn compile(src: &str) -> IrProgram {
        let typed = elaborate(&parse_program(src).expect("parse")).expect("types");
        let prog = lower(&typed).expect("lower");
        prog.validate().expect("valid program");
        prog
    }

    fn fun_by_name<'p>(p: &'p IrProgram, prefix: &str) -> &'p IrFun {
        p.funs
            .iter()
            .find(|f| f.name.starts_with(prefix))
            .unwrap_or_else(|| panic!("no function starting with `{prefix}`"))
    }

    #[test]
    fn lowers_arithmetic_program() {
        let p = compile("1 + 2 * 3");
        assert_eq!(p.funs.len(), 1); // just main
        let main = p.fun(p.main);
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::Arith(_, ArithOp::Mul, _, _))));
    }

    #[test]
    fn direct_call_with_known_arity() {
        let p = compile("fun add x y = x + y ; add 1 2");
        let main = p.fun(p.main);
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallDirect { args, .. } if args.len() == 2)));
        // No wrappers needed for a saturated call.
        assert_eq!(p.funs.len(), 2);
    }

    #[test]
    fn partial_application_generates_wrappers() {
        let p = compile("fun add x y = x + y ; let val inc = add 1 in inc 41 end");
        // add, main, wrap$0, wrap$1.
        assert!(p.funs.len() >= 4, "expected wrappers, got {}", p.funs.len());
        let main = p.fun(p.main);
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::MakeClosure { .. })));
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallClosure { .. })));
    }

    #[test]
    fn list_literal_lowered_to_conses() {
        let p = compile("[1, 2]");
        let main = p.fun(p.main);
        let conses = main
            .code
            .iter()
            .filter(|i| matches!(i, Instr::MakeData { .. }))
            .count();
        assert_eq!(conses, 2);
        // Nil is an immediate load, not an allocation.
        assert!(main.code.iter().any(|i| matches!(i, Instr::LoadInt(_, 0))));
    }

    #[test]
    fn case_compiles_to_tag_tests() {
        let p = compile("fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ; len [1, 2, 3]");
        let len = fun_by_name(&p, "len");
        assert!(len
            .code
            .iter()
            .any(|i| matches!(i, Instr::BranchTagNe { .. })));
        assert!(len
            .code
            .iter()
            .any(|i| matches!(i, Instr::GetField(_, _, 1))));
    }

    #[test]
    fn paper_append_is_monomorphic_with_annotation() {
        // §2.4's `append` on int lists: no frame type parameters at all.
        let p = compile(
            "fun append [] (ys : int list) = ys
               | append (x :: xs) ys = x :: append xs ys ;
             append [1] [2]",
        );
        let append = fun_by_name(&p, "append");
        assert_eq!(append.frame_params.len(), 0, "monomorphic");
        assert!(append
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallDirect { .. })));
    }

    #[test]
    fn polymorphic_callee_gets_theta() {
        let p = compile("fun id x = x ; id [1]");
        let id = fun_by_name(&p, "id");
        assert_eq!(id.frame_params.len(), 1);
        // The main->id site records θ = [int list].
        let theta = p
            .sites
            .iter()
            .find_map(|s| match &s.kind {
                SiteKind::Direct { callee, theta }
                    if p.funs[callee.0 as usize].name.starts_with("id") =>
                {
                    Some(theta.clone())
                }
                _ => None,
            })
            .expect("call site to id");
        assert_eq!(theta, vec![Type::list(Type::Int)]);
    }

    #[test]
    fn recursive_theta_is_identity() {
        let p = compile("fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ; len [true]");
        let len = fun_by_name(&p, "len");
        let q = len.frame_params[0];
        let rec_theta = p
            .sites
            .iter()
            .find_map(|s| match &s.kind {
                SiteKind::Direct { callee, theta }
                    if s.fn_id != p.main && p.funs[callee.0 as usize].name.starts_with("len") =>
                {
                    Some(theta.clone())
                }
                _ => None,
            })
            .expect("recursive site");
        assert_eq!(rec_theta, vec![Type::Param(q)]);
    }

    #[test]
    fn lambda_captures_are_unpacked_at_entry() {
        let p = compile("let val n = 10 in (fn x => x + n) 5 end");
        let lam = fun_by_name(&p, "lambda@");
        assert_eq!(lam.kind, FnKind::ClosureEntered);
        assert_eq!(lam.captures.len(), 1);
        // Entry code loads the capture from field 1 of the closure.
        assert!(matches!(lam.code[0], Instr::GetField(_, Slot(0), 1)));
    }

    #[test]
    fn let_fun_free_vars_become_extras() {
        let p = compile(
            "fun outer n =
               let fun add x = x + n in add 1 + add 2 end ;
             outer 40",
        );
        let add = fun_by_name(&p, "add");
        // One user param plus the lifted `n`.
        assert_eq!(add.n_params, 2);
        let outer = fun_by_name(&p, "outer");
        assert!(outer
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallDirect { args, .. } if args.len() == 2)));
    }

    #[test]
    fn immediate_ctors_do_not_allocate() {
        let p = compile(
            "datatype color = R | G | B ;
             fun pick c = case c of R => 1 | G => 2 | B => 3 ;
             pick G",
        );
        let main = p.fun(p.main);
        assert!(!main
            .code
            .iter()
            .any(|i| matches!(i, Instr::MakeData { .. })));
    }

    #[test]
    fn variant_records_get_discriminants() {
        let p = compile(
            "datatype shape = Circle of int | Rect of int * int ;
             fun area s = case s of Circle r => 3 * r * r | Rect (w, h) => w * h ;
             area (Rect (2, 3))",
        );
        assert_eq!(
            p.ctor_rep(tfgc_types::DataId(1), 0),
            CtorRep::Ptr {
                tag: Some(0),
                n_fields: 1
            }
        );
        let area = fun_by_name(&p, "area");
        // Field reads skip the discriminant word.
        assert!(area
            .code
            .iter()
            .any(|i| matches!(i, Instr::GetField(_, _, 1))));
    }

    #[test]
    fn print_lowers_to_instruction() {
        let p = compile("(print 7; 0)");
        let main = p.fun(p.main);
        assert!(main.code.iter().any(|i| matches!(i, Instr::Print(_))));
    }

    #[test]
    fn globals_are_initialized_in_main() {
        let p = compile("val base = 10 ; fun f x = x + base ; f 1");
        assert_eq!(p.globals.len(), 1);
        let main = p.fun(p.main);
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::StoreGlobal(GlobalId(0), _))));
        let f = fun_by_name(&p, "f#");
        assert!(f
            .code
            .iter()
            .any(|i| matches!(i, Instr::LoadGlobal(_, GlobalId(0)))));
    }

    #[test]
    fn hidden_descriptor_for_escaping_polymorphic_capture() {
        // The §3 gap: the inner closure captures `x : 'a` but has type
        // int -> int, so `'a` is unrecoverable from the arrow — it needs a
        // hidden descriptor.
        let src = "fun k x = fn u => (let val ignored = [x] in u end) ;
                   let val f = k [1, 2] in f 5 end";
        let typed = elaborate(&parse_program(src).unwrap()).unwrap();
        let (p, rtti) = lower_full(&typed).expect("lower");
        p.validate().unwrap();
        assert!(
            rtti.total_desc_fields() > 0,
            "expected hidden descriptors for the escaping capture"
        );
        let k = fun_by_name(&p, "k#");
        assert!(k.code.iter().any(|i| matches!(i, Instr::EvalDesc { .. })));
    }

    #[test]
    fn plain_polymorphism_needs_no_descriptors() {
        // Paper-style polymorphism: everything recoverable at GC time.
        let src = "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
                   append [1] [2]";
        let typed = elaborate(&parse_program(src).unwrap()).unwrap();
        let (_, rtti) = lower_full(&typed).expect("lower");
        assert_eq!(rtti.total_desc_fields(), 0);
    }

    #[test]
    fn disassembly_is_nonempty_and_mentions_functions() {
        let p = compile("fun f x = x + 1 ; f 1");
        let text = display::disasm(&p);
        assert!(text.contains("fn main"));
        assert!(text.contains("call"));
    }

    #[test]
    fn alloc_sites_record_operand_types() {
        let p = compile("(1, true)");
        let site = p
            .sites
            .iter()
            .find(|s| matches!(s.kind, SiteKind::Alloc { .. }))
            .expect("tuple allocation site");
        match &site.kind {
            SiteKind::Alloc { operand_tys } => {
                assert_eq!(
                    operand_tys,
                    &vec![SlotTy::Val(Type::Int), SlotTy::Val(Type::Bool)]
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn closure_call_sites_record_static_type() {
        let p = compile("let val f = fn x => x + 1 in f 3 end");
        let site = p
            .sites
            .iter()
            .find(|s| matches!(s.kind, SiteKind::Closure { .. }))
            .expect("closure call site");
        match &site.kind {
            SiteKind::Closure { clos_ty, .. } => {
                assert_eq!(*clos_ty, Type::arrow(Type::Int, Type::Int));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn higher_order_map_compiles() {
        let p = compile(
            "fun map f xs = case xs of [] => [] | x :: rest => f x :: map f rest ;
             map (fn x => x * 2) [1, 2, 3]",
        );
        let map = fun_by_name(&p, "map#");
        assert_eq!(map.frame_params.len(), 2);
        assert!(map
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallClosure { .. })));
    }

    #[test]
    fn mutual_recursion_compiles() {
        let p = compile(
            "fun even n = if n = 0 then true else odd (n - 1)
             and odd n = if n = 0 then false else even (n - 1) ;
             even 4",
        );
        let even = fun_by_name(&p, "even#");
        let odd = fun_by_name(&p, "odd#");
        assert!(even
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallDirect { .. })));
        assert!(odd
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallDirect { .. })));
    }
}
