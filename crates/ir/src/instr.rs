//! The TFML bytecode instruction set.
//!
//! A register-style slot machine: every operand names a slot of the current
//! activation record, so at any call site the compiler knows exactly which
//! slots hold live heap references and of what type — the property
//! Goldberg's compiled frame GC routines (§2.1) depend on.
//!
//! Every instruction that can trigger a collection (a call, or an
//! allocation — "garbage collection can only be initiated by a call to a
//! procedure that allocates memory", §2.1) carries a [`CallSiteId`]. The
//! side table from call site to frame GC routine is the moral equivalent of
//! the paper's **gc_word at `return address + 8`**: the return address our
//! VM stores is the `(function, pc)` of the call instruction, and the
//! collector indexes the gc_word table with it.

use tfgc_types::{DataId, Type};

/// Index of a slot in the current activation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot(pub u16);

/// Identifies a compiled function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(pub u32);

/// Identifies a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Identifies a call site (an entry in the program's gc_word table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSiteId(pub u32);

/// Identifies a runtime type-descriptor template (see
/// [`crate::program::IrProgram::desc_templates`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DescTemplateId(pub u32);

/// Arithmetic operators (operate on `int`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Comparison operators (`int * int -> bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst <- n`
    LoadInt(Slot, i64),
    /// `dst <- b`
    LoadBool(Slot, bool),
    /// `dst <- ()`
    LoadUnit(Slot),
    /// `dst <- globals[g]`
    LoadGlobal(Slot, GlobalId),
    /// `globals[g] <- src` (only in the program's initialization prefix)
    StoreGlobal(GlobalId, Slot),
    /// `dst <- src`
    Move(Slot, Slot),
    /// `dst <- a op b` — in the tagged encoding this strips and reinstates
    /// tags (the mutator overhead of §1's second advantage).
    Arith(Slot, ArithOp, Slot, Slot),
    /// `dst <- a cmp b`
    Cmp(Slot, CmpOp, Slot, Slot),
    /// `dst <- -a`
    Neg(Slot, Slot),
    /// `dst <- not a`
    Not(Slot, Slot),
    /// Unconditional jump to `pc`.
    Jump(u32),
    /// Jump to `pc` when the slot holds `false`.
    BranchFalse(Slot, u32),
    /// Jump to `pc` when the slot's integer differs from the immediate.
    BranchIntNe(Slot, i64, u32),
    /// Jump to `pc` when the datatype value in the slot was not built by
    /// constructor `ctor` of `data` (discriminant test, §2.3).
    BranchTagNe {
        obj: Slot,
        data: DataId,
        ctor: u32,
        target: u32,
    },
    /// `dst <- obj[offset]` — field read (tuple element, variant payload
    /// field, or closure capture). The offset already accounts for any
    /// discriminant word.
    GetField(Slot, Slot, u16),
    /// Allocate a tuple. May trigger a collection.
    MakeTuple {
        dst: Slot,
        elems: Vec<Slot>,
        site: CallSiteId,
    },
    /// Allocate (or form immediately) a datatype value. May trigger a
    /// collection when the constructor has fields.
    MakeData {
        dst: Slot,
        data: DataId,
        ctor: u32,
        fields: Vec<Slot>,
        site: CallSiteId,
    },
    /// Allocate a closure over function `f`. `captures` are copied into the
    /// environment (hidden runtime-type descriptors, when `f` needs them,
    /// are ordinary `Desc`-typed slots in this list).
    MakeClosure {
        dst: Slot,
        f: FnId,
        captures: Vec<Slot>,
        site: CallSiteId,
    },
    /// `dst <- intern(template)` — build the runtime type descriptor for a
    /// template, reading the current frame's descriptor slots for generic
    /// parameters. Never allocates on the TFML heap (descriptors are
    /// interned), so it has no call site.
    EvalDesc { dst: Slot, template: DescTemplateId },
    /// Direct call of a known function.
    CallDirect {
        dst: Slot,
        f: FnId,
        args: Vec<Slot>,
        site: CallSiteId,
    },
    /// Call through a closure value with a single argument (TFML closures
    /// are curried).
    CallClosure {
        dst: Slot,
        clos: Slot,
        arg: Slot,
        site: CallSiteId,
    },
    /// Return `src` to the caller.
    Return(Slot),
    /// Print the integer in the slot (observable output).
    Print(Slot),
    /// Pattern-match failure (no arm matched a refutable pattern).
    MatchFail,
}

impl Instr {
    /// The call site carried by this instruction, if it can trigger GC.
    pub fn site(&self) -> Option<CallSiteId> {
        match self {
            Instr::MakeTuple { site, .. }
            | Instr::MakeData { site, .. }
            | Instr::MakeClosure { site, .. }
            | Instr::CallDirect { site, .. }
            | Instr::CallClosure { site, .. } => Some(*site),
            _ => None,
        }
    }

    /// Slots read by this instruction.
    pub fn uses(&self) -> Vec<Slot> {
        match self {
            Instr::LoadInt(..)
            | Instr::LoadBool(..)
            | Instr::LoadUnit(..)
            | Instr::LoadGlobal(..)
            | Instr::Jump(_)
            | Instr::EvalDesc { .. }
            | Instr::MatchFail => Vec::new(),
            Instr::StoreGlobal(_, s)
            | Instr::Move(_, s)
            | Instr::Neg(_, s)
            | Instr::Not(_, s)
            | Instr::BranchFalse(s, _)
            | Instr::BranchIntNe(s, _, _)
            | Instr::GetField(_, s, _)
            | Instr::Return(s)
            | Instr::Print(s) => vec![*s],
            Instr::BranchTagNe { obj, .. } => vec![*obj],
            Instr::Arith(_, _, a, b) | Instr::Cmp(_, _, a, b) => vec![*a, *b],
            Instr::MakeTuple { elems, .. } => elems.clone(),
            Instr::MakeData { fields, .. } => fields.clone(),
            Instr::MakeClosure { captures, .. } => captures.clone(),
            Instr::CallDirect { args, .. } => args.clone(),
            Instr::CallClosure { clos, arg, .. } => vec![*clos, *arg],
        }
    }

    /// The slot written by this instruction, if any.
    pub fn def(&self) -> Option<Slot> {
        match self {
            Instr::LoadInt(d, _)
            | Instr::LoadBool(d, _)
            | Instr::LoadUnit(d)
            | Instr::LoadGlobal(d, _)
            | Instr::Move(d, _)
            | Instr::Arith(d, _, _, _)
            | Instr::Cmp(d, _, _, _)
            | Instr::Neg(d, _)
            | Instr::Not(d, _)
            | Instr::GetField(d, _, _)
            | Instr::EvalDesc { dst: d, .. } => Some(*d),
            Instr::MakeTuple { dst, .. }
            | Instr::MakeData { dst, .. }
            | Instr::MakeClosure { dst, .. }
            | Instr::CallDirect { dst, .. }
            | Instr::CallClosure { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Successor program counters of the instruction at `pc`.
    /// `Return`/`MatchFail` have none.
    pub fn successors(&self, pc: u32) -> Vec<u32> {
        match self {
            Instr::Jump(t) => vec![*t],
            Instr::BranchFalse(_, t) | Instr::BranchIntNe(_, _, t) => vec![pc + 1, *t],
            Instr::BranchTagNe { target, .. } => vec![pc + 1, *target],
            Instr::Return(_) | Instr::MatchFail => Vec::new(),
            _ => vec![pc + 1],
        }
    }
}

/// The type of a frame slot.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotTy {
    /// An ordinary TFML value of the given type.
    Val(Type),
    /// A runtime type descriptor (an interned index; never a heap pointer,
    /// so the collector treats it like an integer — `const_gc` in the
    /// paper's terms).
    Desc,
}

impl SlotTy {
    /// The TFML type, if this is a value slot.
    pub fn as_val(&self) -> Option<&Type> {
        match self {
            SlotTy::Val(t) => Some(t),
            SlotTy::Desc => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_and_defs() {
        let i = Instr::Arith(Slot(0), ArithOp::Add, Slot(1), Slot(2));
        assert_eq!(i.uses(), vec![Slot(1), Slot(2)]);
        assert_eq!(i.def(), Some(Slot(0)));
    }

    #[test]
    fn call_excludes_dst_from_uses() {
        let i = Instr::CallDirect {
            dst: Slot(0),
            f: FnId(1),
            args: vec![Slot(2)],
            site: CallSiteId(0),
        };
        assert_eq!(i.uses(), vec![Slot(2)]);
        assert_eq!(i.def(), Some(Slot(0)));
        assert_eq!(i.site(), Some(CallSiteId(0)));
    }

    #[test]
    fn successors_of_branches() {
        let b = Instr::BranchFalse(Slot(0), 9);
        assert_eq!(b.successors(3), vec![4, 9]);
        let r = Instr::Return(Slot(0));
        assert!(r.successors(3).is_empty());
        let j = Instr::Jump(7);
        assert_eq!(j.successors(0), vec![7]);
    }

    #[test]
    fn non_gc_instrs_have_no_site() {
        assert_eq!(Instr::Move(Slot(0), Slot(1)).site(), None);
        assert_eq!(
            Instr::EvalDesc {
                dst: Slot(0),
                template: DescTemplateId(0)
            }
            .site(),
            None
        );
    }
}
