//! Alpha-renaming.
//!
//! Rewrites a typed program so every binder introduces a globally unique
//! name. Lowering then resolves variables, lambda captures, and lifted
//! `let fun` extra parameters by name with no shadowing hazards.
//! Unresolved names (builtins such as `print`) are left untouched.

use std::collections::HashMap;
use tfgc_types::{TExpr, TExprKind, TLetBind, TPat, TPatKind, TProgram};

/// Renames every binder in the program to a unique name.
pub fn alpha_rename(p: &mut TProgram) {
    let mut ren = Renamer::default();
    // Top-level names are unique (the elaborator rejects redefinition), so
    // a flat scope containing every top-level binding is exact regardless
    // of the original fun/val interleaving.
    let mut scope: Scope = HashMap::new();
    for g in &mut p.globals {
        let fresh = ren.fresh(&g.name);
        scope.insert(g.name.clone(), fresh.clone());
        g.name = fresh;
    }
    for f in &mut p.funs {
        let fresh = ren.fresh(&f.name);
        scope.insert(f.name.clone(), fresh.clone());
        f.name = fresh;
    }
    for g in &mut p.globals {
        let mut inner = scope.clone();
        ren.rename_expr(&mut g.init, &mut inner);
    }
    for f in &mut p.funs {
        let mut inner = scope.clone();
        for (name, _) in &mut f.params {
            let fresh = ren.fresh(name);
            inner.insert(name.clone(), fresh.clone());
            *name = fresh;
        }
        ren.rename_expr(&mut f.body, &mut inner);
    }
    let mut main_scope = scope;
    ren.rename_expr(&mut p.main, &mut main_scope);
}

type Scope = HashMap<String, String>;

#[derive(Default)]
struct Renamer {
    counter: u32,
}

impl Renamer {
    fn fresh(&mut self, base: &str) -> String {
        let n = self.counter;
        self.counter += 1;
        // Strip any previous uniquing suffix to keep names readable.
        let stem = base.split("#u").next().unwrap_or(base);
        format!("{stem}#u{n}")
    }

    fn rename_pat(&mut self, pat: &mut TPat, scope: &mut Scope) {
        match &mut pat.kind {
            TPatKind::Var(v) => {
                let fresh = self.fresh(v);
                scope.insert(v.clone(), fresh.clone());
                *v = fresh;
            }
            TPatKind::Tuple(ps) | TPatKind::Ctor { args: ps, .. } => {
                for p in ps {
                    self.rename_pat(p, scope);
                }
            }
            _ => {}
        }
    }

    fn rename_expr(&mut self, e: &mut TExpr, scope: &mut Scope) {
        match &mut e.kind {
            TExprKind::Var { name, .. } => {
                if let Some(new) = scope.get(name) {
                    *name = new.clone();
                }
            }
            TExprKind::Int(_) | TExprKind::Bool(_) | TExprKind::Unit => {}
            TExprKind::Tuple(es) | TExprKind::Ctor { args: es, .. } => {
                for x in es {
                    self.rename_expr(x, scope);
                }
            }
            TExprKind::Proj { tuple, .. } => self.rename_expr(tuple, scope),
            TExprKind::App { f, arg } => {
                self.rename_expr(f, scope);
                self.rename_expr(arg, scope);
            }
            TExprKind::BinOp { lhs, rhs, .. } => {
                self.rename_expr(lhs, scope);
                self.rename_expr(rhs, scope);
            }
            TExprKind::UnOp { operand, .. } => self.rename_expr(operand, scope),
            TExprKind::If { cond, then, els } => {
                self.rename_expr(cond, scope);
                self.rename_expr(then, scope);
                self.rename_expr(els, scope);
            }
            TExprKind::Case { scrut, arms } => {
                self.rename_expr(scrut, scope);
                for arm in arms {
                    let mut inner = scope.clone();
                    self.rename_pat(&mut arm.pat, &mut inner);
                    self.rename_expr(&mut arm.body, &mut inner);
                }
            }
            TExprKind::Let { binds, body } => {
                let mut inner = scope.clone();
                for b in binds {
                    match b {
                        TLetBind::Val { pat, rhs, .. } => {
                            self.rename_expr(rhs, &mut inner.clone());
                            self.rename_pat(pat, &mut inner);
                        }
                        TLetBind::Fun(funs) => {
                            for f in funs.iter_mut() {
                                let fresh = self.fresh(&f.name);
                                inner.insert(f.name.clone(), fresh.clone());
                                f.name = fresh;
                            }
                            for f in funs.iter_mut() {
                                let mut fscope = inner.clone();
                                for (name, _) in &mut f.params {
                                    let fresh = self.fresh(name);
                                    fscope.insert(name.clone(), fresh.clone());
                                    *name = fresh;
                                }
                                self.rename_expr(&mut f.body, &mut fscope);
                            }
                        }
                    }
                }
                self.rename_expr(body, &mut inner);
            }
            TExprKind::Lambda { param, body, .. } => {
                let mut inner = scope.clone();
                let fresh = self.fresh(param);
                inner.insert(param.clone(), fresh.clone());
                *param = fresh;
                self.rename_expr(body, &mut inner);
            }
            TExprKind::Seq(a, b) => {
                self.rename_expr(a, scope);
                self.rename_expr(b, scope);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_syntax::parse_program;
    use tfgc_types::elaborate;

    fn renamed(src: &str) -> TProgram {
        let mut p = elaborate(&parse_program(src).unwrap()).unwrap();
        alpha_rename(&mut p);
        p
    }

    fn collect_names(e: &TExpr, out: &mut Vec<String>) {
        let mut c = e.clone();
        c.visit_vars_mut(&mut |name, _, _| out.push(name.to_string()));
    }

    #[test]
    fn shadowed_locals_get_distinct_names() {
        let p = renamed("let val x = 1 in let val x = 2 in x end end");
        // The inner use must reference the inner binder.
        let mut names = Vec::new();
        collect_names(&p.main, &mut names);
        assert_eq!(names.len(), 1);
        assert!(names[0].contains("#u"), "renamed: {names:?}");
    }

    #[test]
    fn builtin_print_is_untouched() {
        let p = renamed("(print 1; 0)");
        let mut names = Vec::new();
        collect_names(&p.main, &mut names);
        assert!(names.contains(&"print".to_string()));
    }

    #[test]
    fn function_params_renamed_consistently() {
        let p = renamed("fun f x = x + x ; f 3");
        let f = &p.funs[0];
        let pname = f.params[0].0.clone();
        let mut names = Vec::new();
        collect_names(&f.body, &mut names);
        assert!(names.iter().all(|n| *n == pname));
    }

    #[test]
    fn recursive_use_tracks_renamed_function() {
        let p = renamed("fun loop n = if n = 0 then 0 else loop (n - 1) ; loop 3");
        let fname = p.funs[0].name.clone();
        assert!(fname.contains("#u"));
        let mut names = Vec::new();
        collect_names(&p.funs[0].body, &mut names);
        assert!(names.contains(&fname));
    }
}
