//! Lowering shapes beyond the unit tests.

use tfgc_ir::{lower, lower_full, FnKind, Instr, IrProgram, SiteKind};
use tfgc_syntax::parse_program;
use tfgc_types::elaborate;

fn compile(src: &str) -> IrProgram {
    let p = lower(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap();
    p.validate().expect("valid");
    p
}

fn fun<'p>(p: &'p IrProgram, prefix: &str) -> &'p tfgc_ir::IrFun {
    p.funs
        .iter()
        .find(|f| f.name.starts_with(prefix))
        .unwrap_or_else(|| panic!("no fn `{prefix}`"))
}

#[test]
fn three_arg_wrapper_chain() {
    let p = compile(
        "fun add3 a b c = a + b + c ;
         let val f = add3 1 in let val g = f 2 in g 3 end end",
    );
    // Wrappers for k = 0 (value use of `add3 1` applies one arg to w0)...
    let wrappers = p.funs.iter().filter(|f| f.name.starts_with("wrap")).count();
    assert!(wrappers >= 2, "expected a wrapper chain, got {wrappers}");
    // The last wrapper calls add3 directly with 3 args (plus no extras).
    let last = p.funs.iter().rfind(|f| f.name.starts_with("wrap")).unwrap();
    assert!(last
        .code
        .iter()
        .any(|i| matches!(i, Instr::CallDirect { args, .. } if args.len() == 3)));
}

#[test]
fn oversaturated_application() {
    // `pick` returns a closure which is immediately applied.
    let p = compile(
        "fun pick b = if b then (fn x => x + 1) else (fn x => x * 2) ;
         pick true 10",
    );
    let main = p.fun(p.main);
    assert!(main
        .code
        .iter()
        .any(|i| matches!(i, Instr::CallDirect { .. })));
    assert!(main
        .code
        .iter()
        .any(|i| matches!(i, Instr::CallClosure { .. })));
}

#[test]
fn extras_flow_through_nested_lambdas() {
    // The lambda captures `n` because it calls `bump`, whose lifted extra
    // is `n`.
    let p = compile(
        "fun run f = f 0 ;
         fun outer n =
           let fun bump x = x + n in run (fn z => bump z) end ;
         outer 41",
    );
    let lam = fun(&p, "lambda@");
    assert_eq!(lam.kind, FnKind::ClosureEntered);
    assert_eq!(lam.captures.len(), 1, "captures the extra `n`");
    // And calls bump with (z, n).
    assert!(lam
        .code
        .iter()
        .any(|i| matches!(i, Instr::CallDirect { args, .. } if args.len() == 2)));
}

#[test]
fn case_fallthrough_emits_matchfail() {
    let p = compile("case [1] of x :: _ => x");
    let main = p.fun(p.main);
    assert!(main.code.iter().any(|i| matches!(i, Instr::MatchFail)));
}

#[test]
fn irrefutable_let_has_no_matchfail() {
    let p = compile("let val (a, b) = (1, 2) in a + b end");
    let main = p.fun(p.main);
    assert!(!main.code.iter().any(|i| matches!(i, Instr::MatchFail)));
}

#[test]
fn single_ctor_datatype_skips_tag_test() {
    let p = compile(
        "datatype box = B of int ;
         case B 5 of B n => n",
    );
    let main = p.fun(p.main);
    assert!(!main
        .code
        .iter()
        .any(|i| matches!(i, Instr::BranchTagNe { .. })));
}

#[test]
fn multi_ptr_ctor_datatype_stores_tags() {
    let p = compile(
        "datatype e = L of int | R of bool ;
         case L 1 of L n => n | R _ => 0",
    );
    // Both ctors have fields => both carry discriminants.
    use tfgc_ir::CtorRep;
    assert!(matches!(
        p.ctor_rep(tfgc_types::DataId(1), 0),
        CtorRep::Ptr { tag: Some(0), .. }
    ));
    assert!(matches!(
        p.ctor_rep(tfgc_types::DataId(1), 1),
        CtorRep::Ptr { tag: Some(1), .. }
    ));
}

#[test]
fn globals_initialize_in_declaration_order() {
    let p = compile("val a = 1 ; val b = 2 ; val c = 3 ; a + b + c");
    let main = p.fun(p.main);
    let stores: Vec<u32> = main
        .code
        .iter()
        .filter_map(|i| match i {
            Instr::StoreGlobal(g, _) => Some(g.0),
            _ => None,
        })
        .collect();
    assert_eq!(stores, vec![0, 1, 2]);
}

#[test]
fn seq_lowered_in_order() {
    let p = compile("(print 1; print 2; 3)");
    let main = p.fun(p.main);
    let prints: Vec<usize> = main
        .code
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Instr::Print(_)))
        .map(|(pc, _)| pc)
        .collect();
    assert_eq!(prints.len(), 2);
    assert!(prints[0] < prints[1]);
}

#[test]
fn polymorphic_let_fun_with_extras_keeps_params() {
    let p = compile(
        "fun outer k =
           let fun tag x = (k, x) in (tag 1, tag true) end ;
         outer 9",
    );
    let tag = fun(&p, "tag");
    // tag is polymorphic in x and lifted over k.
    assert!(tag.n_params >= 2);
    assert!(!tag.frame_params.is_empty());
}

#[test]
fn site_table_covers_every_gc_instruction() {
    let p = compile(
        "fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
         map (fn x => (x, x)) [1, 2, 3]",
    );
    for f in &p.funs {
        for (pc, ins) in f.code.iter().enumerate() {
            if let Some(site) = ins.site() {
                let cs = p.site(site);
                assert_eq!(cs.pc, pc as u32);
                match (&cs.kind, ins) {
                    (SiteKind::Direct { .. }, Instr::CallDirect { .. })
                    | (SiteKind::Closure { .. }, Instr::CallClosure { .. })
                    | (
                        SiteKind::Alloc { .. },
                        Instr::MakeTuple { .. }
                        | Instr::MakeData { .. }
                        | Instr::MakeClosure { .. },
                    ) => {}
                    (k, i) => panic!("site kind {k:?} mismatches instruction {i:?}"),
                }
            }
        }
    }
}

#[test]
fn rtti_descs_only_where_needed() {
    // Ground captures: no descriptors anywhere.
    let src = "fun mk n = fn x => x + n ; (mk 1) 2";
    let (p, rtti) = lower_full(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap();
    assert_eq!(rtti.total_desc_fields(), 0);
    assert!(!p
        .funs
        .iter()
        .any(|f| f.code.iter().any(|i| matches!(i, Instr::EvalDesc { .. }))));
}

#[test]
fn transitive_rtti_propagation() {
    // outer passes its param to konst, whose closure hides it: outer
    // must receive a descriptor argument too.
    let src = "fun konst x = fn u => (let val probe = [x] in u end) ;
               fun outer y = konst (y, y) ;
               (outer 1) 2";
    let (p, rtti) = lower_full(&elaborate(&parse_program(src).unwrap()).unwrap()).unwrap();
    assert!(rtti.total_desc_fields() >= 2, "konst closure + transitive");
    let outer = p.funs.iter().find(|f| f.name.starts_with("outer")).unwrap();
    // outer's body must evaluate a descriptor to call konst.
    assert!(outer
        .code
        .iter()
        .any(|i| matches!(i, Instr::EvalDesc { .. })));
}

#[test]
fn disasm_round_trips_every_instruction_shape() {
    let p = compile(
        "datatype shape = Circle of int | Rect of int * int | Point ;
         val g = [1] ;
         fun area s = case s of Circle r => 3 * r * r | Rect (w, h) => w * h | Point => 0 ;
         fun apply f x = f x ;
         (print (area (Rect (2, 3))); (1, apply (fn v => ~v) (case g of [] => 0 | x :: _ => x)))",
    );
    let text = tfgc_ir::display::disasm(&p);
    for needle in ["call", "closure", "tuple", "print", "global", "jump", "neg"] {
        assert!(text.contains(needle), "disasm lacks `{needle}`:\n{text}");
    }
}
