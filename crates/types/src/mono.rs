//! Monomorphism check.
//!
//! Goldberg's §2 algorithm is defined for monomorphically typed programs;
//! §3 extends it to polymorphism. [`is_monomorphic`] classifies an
//! elaborated program so the driver can select the §2 (ground frame
//! routines) or §3 (parameterized frame routines) metadata generator, and
//! so experiments can be restricted to the monomorphic subset.

use crate::tast::{TExpr, TProgram};

/// True when no binding in the program generalized any type variable,
/// i.e. every frame slot type is ground and §2's collector suffices.
pub fn is_monomorphic(p: &TProgram) -> bool {
    if p.funs.iter().any(|f| f.scheme.num_params > 0) {
        return false;
    }
    if p.globals.iter().any(|g| g.scheme.num_params > 0) {
        return false;
    }
    p.funs.iter().all(|f| expr_mono(&f.body))
        && p.globals.iter().all(|g| expr_mono(&g.init))
        && expr_mono(&p.main)
}

fn expr_mono(e: &TExpr) -> bool {
    use crate::tast::{TExprKind, TLetBind};
    if !e.ty.is_ground() {
        return false;
    }
    match &e.kind {
        TExprKind::Let { binds, body } => {
            for b in binds {
                match b {
                    TLetBind::Val { rhs, scheme, .. } => {
                        if scheme.as_ref().is_some_and(|s| s.num_params > 0) {
                            return false;
                        }
                        if !expr_mono(rhs) {
                            return false;
                        }
                    }
                    TLetBind::Fun(funs) => {
                        for f in funs {
                            if f.scheme.num_params > 0 || !expr_mono(&f.body) {
                                return false;
                            }
                        }
                    }
                }
            }
            expr_mono(body)
        }
        TExprKind::Tuple(es) | TExprKind::Ctor { args: es, .. } => es.iter().all(expr_mono),
        TExprKind::Proj { tuple, .. } => expr_mono(tuple),
        TExprKind::App { f, arg } => expr_mono(f) && expr_mono(arg),
        TExprKind::BinOp { lhs, rhs, .. } => expr_mono(lhs) && expr_mono(rhs),
        TExprKind::UnOp { operand, .. } => expr_mono(operand),
        TExprKind::If { cond, then, els } => expr_mono(cond) && expr_mono(then) && expr_mono(els),
        TExprKind::Case { scrut, arms } => {
            expr_mono(scrut) && arms.iter().all(|a| expr_mono(&a.body))
        }
        TExprKind::Lambda { body, .. } => expr_mono(body),
        TExprKind::Seq(a, b) => expr_mono(a) && expr_mono(b),
        _ => true,
    }
}
