//! Type schemes (polymorphic types).

use crate::ty::{ParamId, SchemeId, Type};
use crate::unify::InferCtx;

/// A (possibly) polymorphic type: `num_params` generic parameters owned by
/// binder `id`, quantified over `ty` (which mentions them as
/// [`Type::Param`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    pub id: SchemeId,
    pub num_params: u32,
    pub ty: Type,
}

impl Scheme {
    /// A monomorphic scheme (no quantified parameters).
    pub fn mono(id: SchemeId, ty: Type) -> Self {
        Scheme {
            id,
            num_params: 0,
            ty,
        }
    }

    /// Instantiates the scheme with fresh unification variables.
    ///
    /// Returns the instantiated type and the per-parameter instantiation
    /// vector (recorded at each use site; after final zonking this is the
    /// static type substitution θ that Goldberg's polymorphic frame
    /// routines evaluate at GC time).
    pub fn instantiate(&self, cx: &mut InferCtx) -> (Type, Vec<Type>) {
        let inst: Vec<Type> = (0..self.num_params).map(|_| cx.fresh()).collect();
        let scheme_id = self.id;
        let ty = self.ty.map_params(&mut |p: ParamId| {
            if p.scheme == scheme_id {
                inst[p.index as usize].clone()
            } else {
                Type::Param(p)
            }
        });
        (ty, inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TvId;

    #[test]
    fn mono_instantiates_to_itself() {
        let mut cx = InferCtx::new();
        let s = Scheme::mono(SchemeId(1), Type::arrow(Type::Int, Type::Int));
        let (t, inst) = s.instantiate(&mut cx);
        assert_eq!(t, Type::arrow(Type::Int, Type::Int));
        assert!(inst.is_empty());
    }

    #[test]
    fn poly_gets_fresh_vars() {
        let mut cx = InferCtx::new();
        let id = SchemeId(3);
        let p0 = Type::Param(ParamId {
            scheme: id,
            index: 0,
        });
        let s = Scheme {
            id,
            num_params: 1,
            ty: Type::arrow(p0.clone(), Type::list(p0)),
        };
        let (t, inst) = s.instantiate(&mut cx);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0], Type::Var(TvId(0)));
        assert_eq!(
            t,
            Type::arrow(Type::Var(TvId(0)), Type::list(Type::Var(TvId(0))))
        );
    }

    #[test]
    fn foreign_params_pass_through() {
        let mut cx = InferCtx::new();
        let outer = Type::Param(ParamId {
            scheme: SchemeId(9),
            index: 0,
        });
        let s = Scheme {
            id: SchemeId(3),
            num_params: 0,
            ty: outer.clone(),
        };
        let (t, _) = s.instantiate(&mut cx);
        assert_eq!(t, outer);
    }
}
