//! Type inference and elaboration (Algorithm W with let-polymorphism and a
//! value restriction), producing the typed AST of [`crate::tast`].
//!
//! Design notes relevant to the GC reproduction:
//!
//! * Each generalized binding gets a fresh [`SchemeId`]; quantified
//!   unification variables are rewritten to [`Type::Param`]s owned by that
//!   binder **inside the binding's own body**. A function's frame slot
//!   types therefore mention exactly the generic parameters its frame
//!   routines must be parameterized by (Goldberg §3).
//! * Every use of a binding records its instantiation vector. Inside a
//!   function `f` those instantiations are types over `f`'s parameters —
//!   the static substitution θ evaluated during collection.
//! * Unconstrained types default to `int` after inference, so monomorphic
//!   programs elaborate to fully ground types.

use crate::datatypes::{data_param, CtorDef, DataDef, DataEnv};
use crate::error::{TypeError, TypeResult};
use crate::scheme::Scheme;
use crate::tast::*;
use crate::ty::{ParamId, SchemeId, TvId, Type};
use crate::unify::InferCtx;
use std::collections::{HashMap, HashSet};
use tfgc_syntax::ast as s;
use tfgc_syntax::{BinOp, Span};

/// Elaborates a parsed program into a typed program.
///
/// # Errors
///
/// Returns the first type error encountered (unification failure, unknown
/// identifier, malformed constructor use, ...).
pub fn elaborate(program: &s::Program) -> TypeResult<TProgram> {
    Elab::new().run(program)
}

#[derive(Debug, Clone)]
struct Binding {
    scheme: Scheme,
    kind: VarKind,
    /// `Some(group)` while the binding is the monomorphic placeholder for a
    /// recursive `fun` group still being inferred.
    rec_group: Option<u32>,
}

struct Elab {
    cx: InferCtx,
    data: DataEnv,
    scopes: Vec<Vec<(String, Binding)>>,
    next_scheme: u32,
    next_group: u32,
    fresh_names: u32,
}

impl Elab {
    fn new() -> Self {
        let mut e = Elab {
            cx: InferCtx::new(),
            data: DataEnv::new(),
            scopes: vec![Vec::new()],
            next_scheme: 0,
            next_group: 0,
            fresh_names: 0,
        };
        // Builtins.
        let print_scheme = Scheme::mono(e.alloc_scheme(), Type::arrow(Type::Int, Type::Unit));
        e.bind(
            "print".into(),
            Binding {
                scheme: print_scheme,
                kind: VarKind::Builtin,
                rec_group: None,
            },
        );
        e
    }

    fn alloc_scheme(&mut self) -> SchemeId {
        let id = SchemeId(self.next_scheme);
        self.next_scheme += 1;
        id
    }

    fn fresh_name(&mut self, hint: &str) -> String {
        let n = self.fresh_names;
        self.fresh_names += 1;
        format!("{hint}#t{n}")
    }

    fn bind(&mut self, name: String, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .push((name, b));
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        for scope in self.scopes.iter().rev() {
            for (n, b) in scope.iter().rev() {
                if n == name {
                    return Some(b);
                }
            }
        }
        None
    }

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop().expect("unbalanced scope pop");
    }

    /// Unification variables free in the environment (excluding the
    /// placeholders of the group currently being generalized).
    fn env_free_vars(&self, exclude_group: Option<u32>) -> HashSet<TvId> {
        let mut set = HashSet::new();
        for scope in &self.scopes {
            for (_, b) in scope {
                if b.rec_group.is_some() && b.rec_group == exclude_group {
                    continue;
                }
                let mut vs = Vec::new();
                self.cx.zonk(&b.scheme.ty).free_vars(&mut vs);
                set.extend(vs);
            }
        }
        set
    }

    // ---- driver ------------------------------------------------------

    fn run(mut self, prog: &s::Program) -> TypeResult<TProgram> {
        self.register_datatypes(prog)?;
        let mut funs = Vec::new();
        let mut globals = Vec::new();
        // Top-level names must be unique: downstream passes rely on a flat
        // top-level namespace.
        let mut top_names: HashSet<String> = HashSet::new();
        let mut check_top = |name: &str, span: Span| -> TypeResult<()> {
            if top_names.insert(name.to_string()) {
                Ok(())
            } else {
                Err(TypeError::new(
                    span,
                    format!("duplicate top-level binding `{name}`"),
                ))
            }
        };
        for decl in &prog.decls {
            match decl {
                s::Decl::Datatype(_) => {}
                s::Decl::Fun(group) => {
                    for f in group {
                        check_top(&f.name, f.span)?;
                    }
                    funs.extend(self.elab_fun_group(group, VarKind::TopFun)?);
                }
                s::Decl::Val(pat, rhs) => {
                    if let s::PatKind::Var(v) = &pat.kind {
                        check_top(v, pat.span)?;
                    }
                    globals.push(self.elab_global(pat, rhs)?);
                }
            }
        }
        let main = self.elab_expr(&prog.main)?;

        let mut out = TProgram {
            data_env: self.data.clone(),
            funs,
            globals,
            main,
        };
        // Final zonk; any leftover unification variable defaults to int.
        let cx = &self.cx;
        let mut finish = |t: &mut Type| {
            *t = cx.zonk(t).map_vars(&mut |_| Type::Int);
        };
        for f in &mut out.funs {
            f.map_types_mut(&mut finish);
        }
        for g in &mut out.globals {
            finish(&mut g.scheme.ty);
            g.init.map_types_mut(&mut finish);
        }
        out.main.map_types_mut(&mut finish);
        validate_insts(&out)?;
        Ok(out)
    }

    fn register_datatypes(&mut self, prog: &s::Program) -> TypeResult<()> {
        // Pass 1: allocate ids so that mutually recursive datatypes resolve.
        let mut ids = HashMap::new();
        for decl in &prog.decls {
            if let s::Decl::Datatype(dt) = decl {
                if self.data.data_by_name(&dt.name).is_some() || ids.contains_key(&dt.name) {
                    return Err(TypeError::new(
                        dt.span,
                        format!("duplicate datatype `{}`", dt.name),
                    ));
                }
                let id = self.data.insert(DataDef {
                    name: dt.name.clone(),
                    arity: dt.params.len() as u32,
                    ctors: Vec::new(),
                });
                ids.insert(dt.name.clone(), id);
            }
        }
        // Pass 2: elaborate constructor field types.
        for decl in &prog.decls {
            if let s::Decl::Datatype(dt) = decl {
                let id = ids[&dt.name];
                let mut tyvars: HashMap<String, Type> = dt
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.clone(), data_param(id, i as u32)))
                    .collect();
                let mut ctors = Vec::new();
                for (tag, c) in dt.ctors.iter().enumerate() {
                    if self.data.ctor(&c.name).is_some()
                        || ctors.iter().any(|cd: &CtorDef| cd.name == c.name)
                    {
                        return Err(TypeError::new(
                            c.span,
                            format!("duplicate constructor `{}`", c.name),
                        ));
                    }
                    let fields = c
                        .args
                        .iter()
                        .map(|t| self.conv_ty(t, &mut tyvars, false, c.span))
                        .collect::<TypeResult<Vec<_>>>()?;
                    ctors.push(CtorDef {
                        name: c.name.clone(),
                        tag: tag as u32,
                        fields,
                    });
                }
                self.data.set_ctors(id, ctors);
            }
        }
        Ok(())
    }

    /// Converts a surface type. Unknown type variables are errors when
    /// `rigid` (datatype declarations) and fresh unification variables
    /// otherwise (annotations).
    fn conv_ty(
        &mut self,
        t: &s::Ty,
        tyvars: &mut HashMap<String, Type>,
        flexible: bool,
        span: Span,
    ) -> TypeResult<Type> {
        Ok(match t {
            s::Ty::Int => Type::Int,
            s::Ty::Bool => Type::Bool,
            s::Ty::Unit => Type::Unit,
            s::Ty::Var(v) => match tyvars.get(v) {
                Some(ty) => ty.clone(),
                None if flexible => {
                    let fresh = self.cx.fresh();
                    tyvars.insert(v.clone(), fresh.clone());
                    fresh
                }
                None => {
                    return Err(TypeError::new(
                        span,
                        format!("unbound type variable `'{v}`"),
                    ))
                }
            },
            s::Ty::Tuple(ts) => Type::Tuple(
                ts.iter()
                    .map(|t| self.conv_ty(t, tyvars, flexible, span))
                    .collect::<TypeResult<_>>()?,
            ),
            s::Ty::List(inner) => Type::list(self.conv_ty(inner, tyvars, flexible, span)?),
            s::Ty::Arrow(a, b) => Type::arrow(
                self.conv_ty(a, tyvars, flexible, span)?,
                self.conv_ty(b, tyvars, flexible, span)?,
            ),
            s::Ty::Named(name, args) => {
                let id = self
                    .data
                    .data_by_name(name)
                    .ok_or_else(|| TypeError::new(span, format!("unknown type `{name}`")))?;
                let def = self.data.def(id);
                if def.arity as usize != args.len() {
                    return Err(TypeError::new(
                        span,
                        format!(
                            "type `{name}` expects {} arguments, got {}",
                            def.arity,
                            args.len()
                        ),
                    ));
                }
                Type::Data(
                    id,
                    args.iter()
                        .map(|t| self.conv_ty(t, tyvars, flexible, span))
                        .collect::<TypeResult<_>>()?,
                )
            }
        })
    }

    // ---- globals -------------------------------------------------------

    fn elab_global(&mut self, pat: &s::Pat, rhs: &s::Expr) -> TypeResult<TGlobal> {
        let name = match &pat.kind {
            s::PatKind::Var(v) => v.clone(),
            _ => {
                return Err(TypeError::new(
                    pat.span,
                    "top-level `val` must bind a single variable",
                ))
            }
        };
        let mut init = self.elab_expr(rhs)?;
        let scheme = if is_syntactic_value(rhs) {
            self.generalize_single(&mut init, None)?
        } else {
            Scheme::mono(self.alloc_scheme(), self.cx.zonk(&init.ty))
        };
        self.bind(
            name.clone(),
            Binding {
                scheme: scheme.clone(),
                kind: VarKind::Global,
                rec_group: None,
            },
        );
        Ok(TGlobal {
            name,
            scheme,
            init,
            span: pat.span,
        })
    }

    /// Generalizes the type of a single elaborated value, rewriting
    /// quantified variables to parameters inside it.
    fn generalize_single(
        &mut self,
        value: &mut TExpr,
        exclude_group: Option<u32>,
    ) -> TypeResult<Scheme> {
        let env_free = self.env_free_vars(exclude_group);
        let ty = self.cx.zonk(&value.ty);
        let mut vs = Vec::new();
        ty.free_vars(&mut vs);
        let quant: Vec<TvId> = vs.into_iter().filter(|v| !env_free.contains(v)).collect();
        let id = self.alloc_scheme();
        let map: HashMap<TvId, ParamId> = quant
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    *v,
                    ParamId {
                        scheme: id,
                        index: i as u32,
                    },
                )
            })
            .collect();
        let cx = &self.cx;
        value.map_types_mut(&mut |t| {
            *t = cx.zonk(t).map_vars(&mut |v| match map.get(&v) {
                Some(p) => Type::Param(*p),
                None => Type::Var(v),
            });
        });
        let sty = ty.map_vars(&mut |v| match map.get(&v) {
            Some(p) => Type::Param(*p),
            None => Type::Var(v),
        });
        Ok(Scheme {
            id,
            num_params: quant.len() as u32,
            ty: sty,
        })
    }

    // ---- functions -------------------------------------------------------

    fn elab_fun_group(&mut self, group: &[s::FunBind], kind: VarKind) -> TypeResult<Vec<TFun>> {
        let group_id = self.next_group;
        self.next_group += 1;

        // 1. Bind placeholders.
        let mut placeholder_tys = Vec::new();
        for f in group {
            let ty = self.cx.fresh();
            placeholder_tys.push(ty.clone());
            self.bind(
                f.name.clone(),
                Binding {
                    scheme: Scheme::mono(SchemeId(u32::MAX), ty),
                    kind,
                    rec_group: Some(group_id),
                },
            );
        }

        // 2. Infer bodies.
        let mut partial: Vec<TFun> = Vec::new();
        for (f, placeholder) in group.iter().zip(&placeholder_tys) {
            if f.params.is_empty() {
                return Err(TypeError::new(f.span, "function must take a parameter"));
            }
            self.push_scope();
            let mut params = Vec::new();
            for p in &f.params {
                let ty = self.cx.fresh();
                self.bind(
                    p.clone(),
                    Binding {
                        scheme: Scheme::mono(SchemeId(u32::MAX), ty.clone()),
                        kind: VarKind::Local,
                        rec_group: None,
                    },
                );
                params.push((p.clone(), ty));
            }
            let body = self.elab_expr(&f.body)?;
            self.pop_scope();
            let arrow = Type::arrow_n(params.iter().map(|(_, t)| t.clone()), body.ty.clone());
            self.cx.unify(placeholder, &arrow, f.span)?;
            let ret = body.ty.clone();
            partial.push(TFun {
                name: f.name.clone(),
                scheme: Scheme::mono(SchemeId(u32::MAX), Type::Unit), // patched below
                params,
                ret,
                body,
                span: f.span,
            });
        }

        // 3. Generalize each member.
        let env_free = self.env_free_vars(Some(group_id));
        struct MemberInfo {
            scheme: Scheme,
            quant: Vec<TvId>,
            map: HashMap<TvId, ParamId>,
        }
        let mut infos = Vec::new();
        for (tf, placeholder) in partial.iter().zip(&placeholder_tys) {
            let ty = self.cx.zonk(placeholder);
            let mut vs = Vec::new();
            ty.free_vars(&mut vs);
            let quant: Vec<TvId> = vs.into_iter().filter(|v| !env_free.contains(v)).collect();
            let id = self.alloc_scheme();
            let map: HashMap<TvId, ParamId> = quant
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    (
                        *v,
                        ParamId {
                            scheme: id,
                            index: i as u32,
                        },
                    )
                })
                .collect();
            let sty = ty.map_vars(&mut |v| match map.get(&v) {
                Some(p) => Type::Param(*p),
                None => Type::Var(v),
            });
            let _ = tf;
            infos.push(MemberInfo {
                scheme: Scheme {
                    id,
                    num_params: quant.len() as u32,
                    ty: sty,
                },
                quant,
                map,
            });
        }

        // 3a. Fix monomorphic recursive uses: give them the identity
        // instantiation (as raw vars; the rewrite below parameterizes them
        // under each enclosing member's own map).
        let group_names: HashMap<&str, usize> = group
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        for tf in &mut partial {
            tf.body.visit_vars_mut(&mut |name, _, inst| {
                if inst.is_none() {
                    if let Some(&i) = group_names.get(name) {
                        *inst = Some(infos[i].quant.iter().map(|v| Type::Var(*v)).collect());
                    }
                }
            });
        }

        // 3b. Rewrite each member's types under its own map.
        for (tf, info) in partial.iter_mut().zip(&infos) {
            let cx = &self.cx;
            let map = &info.map;
            tf.map_types_mut(&mut |t| {
                *t = cx.zonk(t).map_vars(&mut |v| match map.get(&v) {
                    Some(p) => Type::Param(*p),
                    None => Type::Var(v),
                });
            });
            tf.scheme = info.scheme.clone();
        }

        // 4. Rebind with generalized schemes.
        for (f, info) in group.iter().zip(&infos) {
            self.bind(
                f.name.clone(),
                Binding {
                    scheme: info.scheme.clone(),
                    kind,
                    rec_group: None,
                },
            );
        }
        Ok(partial)
    }

    // ---- expressions ---------------------------------------------------

    fn elab_expr(&mut self, e: &s::Expr) -> TypeResult<TExpr> {
        let span = e.span;
        match &e.kind {
            s::ExprKind::Int(n) => Ok(TExpr {
                kind: TExprKind::Int(*n),
                ty: Type::Int,
                span,
            }),
            s::ExprKind::Bool(b) => Ok(TExpr {
                kind: TExprKind::Bool(*b),
                ty: Type::Bool,
                span,
            }),
            s::ExprKind::Unit => Ok(TExpr {
                kind: TExprKind::Unit,
                ty: Type::Unit,
                span,
            }),
            s::ExprKind::Var(name) => self.elab_var(name, span),
            s::ExprKind::Ctor(name) => self.elab_bare_ctor(name, span),
            s::ExprKind::Tuple(es) => {
                let elems = es
                    .iter()
                    .map(|e| self.elab_expr(e))
                    .collect::<TypeResult<Vec<_>>>()?;
                let ty = Type::Tuple(elems.iter().map(|e| e.ty.clone()).collect());
                Ok(TExpr {
                    kind: TExprKind::Tuple(elems),
                    ty,
                    span,
                })
            }
            s::ExprKind::List(es) => {
                let elem_ty = self.cx.fresh();
                let mut elems = Vec::new();
                for e in es {
                    let te = self.elab_expr(e)?;
                    self.cx.unify(&te.ty, &elem_ty, e.span)?;
                    elems.push(te);
                }
                let list_ty = Type::list(elem_ty);
                let mut acc = TExpr {
                    kind: TExprKind::Ctor {
                        data: crate::ty::LIST_DATA,
                        tag: crate::ty::NIL_TAG,
                        args: Vec::new(),
                    },
                    ty: list_ty.clone(),
                    span,
                };
                for te in elems.into_iter().rev() {
                    acc = TExpr {
                        kind: TExprKind::Ctor {
                            data: crate::ty::LIST_DATA,
                            tag: crate::ty::CONS_TAG,
                            args: vec![te, acc],
                        },
                        ty: list_ty.clone(),
                        span,
                    };
                }
                Ok(acc)
            }
            s::ExprKind::Cons(h, t) => {
                let th = self.elab_expr(h)?;
                let tt = self.elab_expr(t)?;
                let list_ty = Type::list(th.ty.clone());
                self.cx.unify(&tt.ty, &list_ty, span)?;
                Ok(TExpr {
                    kind: TExprKind::Ctor {
                        data: crate::ty::LIST_DATA,
                        tag: crate::ty::CONS_TAG,
                        args: vec![th, tt],
                    },
                    ty: list_ty,
                    span,
                })
            }
            s::ExprKind::App(f, arg) => {
                if let s::ExprKind::Ctor(name) = &f.kind {
                    return self.elab_ctor_app(name, arg, span);
                }
                let tf = self.elab_expr(f)?;
                let ta = self.elab_expr(arg)?;
                let res = self.cx.fresh();
                self.cx
                    .unify(&tf.ty, &Type::arrow(ta.ty.clone(), res.clone()), span)?;
                Ok(TExpr {
                    kind: TExprKind::App {
                        f: Box::new(tf),
                        arg: Box::new(ta),
                    },
                    ty: res,
                    span,
                })
            }
            s::ExprKind::BinOp(op, a, b) => self.elab_binop(*op, a, b, span),
            s::ExprKind::UnOp(op, a) => {
                let ta = self.elab_expr(a)?;
                let ty = match op {
                    s::UnOp::Neg => Type::Int,
                    s::UnOp::Not => Type::Bool,
                };
                self.cx.unify(&ta.ty, &ty, span)?;
                Ok(TExpr {
                    kind: TExprKind::UnOp {
                        op: *op,
                        operand: Box::new(ta),
                    },
                    ty,
                    span,
                })
            }
            s::ExprKind::If(c, t, f) => {
                let tc = self.elab_expr(c)?;
                self.cx.unify(&tc.ty, &Type::Bool, c.span)?;
                let tt = self.elab_expr(t)?;
                let tf = self.elab_expr(f)?;
                self.cx.unify(&tt.ty, &tf.ty, span)?;
                let ty = tt.ty.clone();
                Ok(TExpr {
                    kind: TExprKind::If {
                        cond: Box::new(tc),
                        then: Box::new(tt),
                        els: Box::new(tf),
                    },
                    ty,
                    span,
                })
            }
            s::ExprKind::Lambda(param, body) => {
                let pty = self.cx.fresh();
                self.push_scope();
                self.bind(
                    param.clone(),
                    Binding {
                        scheme: Scheme::mono(SchemeId(u32::MAX), pty.clone()),
                        kind: VarKind::Local,
                        rec_group: None,
                    },
                );
                let tbody = self.elab_expr(body)?;
                self.pop_scope();
                let ty = Type::arrow(pty.clone(), tbody.ty.clone());
                Ok(TExpr {
                    kind: TExprKind::Lambda {
                        param: param.clone(),
                        param_ty: pty,
                        body: Box::new(tbody),
                    },
                    ty,
                    span,
                })
            }
            s::ExprKind::Case(scrut, arms) => {
                let tscrut = self.elab_expr(scrut)?;
                let result = self.cx.fresh();
                let mut tarms = Vec::new();
                for arm in arms {
                    self.push_scope();
                    let tpat = self.elab_pat(&arm.pat, &tscrut.ty)?;
                    let tbody = self.elab_expr(&arm.body)?;
                    self.pop_scope();
                    self.cx.unify(&tbody.ty, &result, arm.body.span)?;
                    tarms.push(TArm {
                        pat: tpat,
                        body: tbody,
                    });
                }
                if tarms.is_empty() {
                    return Err(TypeError::new(span, "case expression has no arms"));
                }
                Ok(TExpr {
                    kind: TExprKind::Case {
                        scrut: Box::new(tscrut),
                        arms: tarms,
                    },
                    ty: result,
                    span,
                })
            }
            s::ExprKind::Let(binds, body) => {
                self.push_scope();
                let mut tbinds = Vec::new();
                for b in binds {
                    match b {
                        s::LetBind::Val(pat, rhs) => {
                            let mut trhs = self.elab_expr(rhs)?;
                            let single_var = matches!(&pat.kind, s::PatKind::Var(_));
                            if single_var && is_syntactic_value(rhs) {
                                let scheme = self.generalize_single(&mut trhs, None)?;
                                let name = match &pat.kind {
                                    s::PatKind::Var(v) => v.clone(),
                                    _ => unreachable!("checked single_var"),
                                };
                                self.bind(
                                    name.clone(),
                                    Binding {
                                        scheme: scheme.clone(),
                                        kind: VarKind::Local,
                                        rec_group: None,
                                    },
                                );
                                let tpat = TPat {
                                    kind: TPatKind::Var(name),
                                    ty: trhs.ty.clone(),
                                    span: pat.span,
                                };
                                tbinds.push(TLetBind::Val {
                                    pat: tpat,
                                    rhs: trhs,
                                    scheme: Some(scheme),
                                });
                            } else {
                                let tpat = self.elab_pat(pat, &trhs.ty.clone())?;
                                tbinds.push(TLetBind::Val {
                                    pat: tpat,
                                    rhs: trhs,
                                    scheme: None,
                                });
                            }
                        }
                        s::LetBind::Fun(group) => {
                            let funs = self.elab_fun_group(group, VarKind::LetFun)?;
                            tbinds.push(TLetBind::Fun(funs));
                        }
                    }
                }
                let tbody = self.elab_expr(body)?;
                self.pop_scope();
                let ty = tbody.ty.clone();
                Ok(TExpr {
                    kind: TExprKind::Let {
                        binds: tbinds,
                        body: Box::new(tbody),
                    },
                    ty,
                    span,
                })
            }
            s::ExprKind::Ann(inner, surface_ty) => {
                let te = self.elab_expr(inner)?;
                let mut tyvars = HashMap::new();
                let ann = self.conv_ty(surface_ty, &mut tyvars, true, span)?;
                self.cx.unify(&te.ty, &ann, span)?;
                Ok(te)
            }
            s::ExprKind::Seq(a, b) => {
                let ta = self.elab_expr(a)?;
                let tb = self.elab_expr(b)?;
                let ty = tb.ty.clone();
                Ok(TExpr {
                    kind: TExprKind::Seq(Box::new(ta), Box::new(tb)),
                    ty,
                    span,
                })
            }
        }
    }

    fn elab_var(&mut self, name: &str, span: Span) -> TypeResult<TExpr> {
        let binding = self
            .lookup(name)
            .ok_or_else(|| TypeError::new(span, format!("unbound variable `{name}`")))?
            .clone();
        if binding.rec_group.is_some() {
            // Monomorphic recursive use; instantiation patched at
            // generalization time.
            return Ok(TExpr {
                kind: TExprKind::Var {
                    name: name.to_string(),
                    kind: binding.kind,
                    inst: None,
                },
                ty: binding.scheme.ty.clone(),
                span,
            });
        }
        let (ty, inst) = binding.scheme.instantiate(&mut self.cx);
        Ok(TExpr {
            kind: TExprKind::Var {
                name: name.to_string(),
                kind: binding.kind,
                inst: Some(inst),
            },
            ty,
            span,
        })
    }

    fn ctor_info(
        &mut self,
        name: &str,
        span: Span,
    ) -> TypeResult<(crate::ty::DataId, u32, Vec<Type>, Vec<Type>)> {
        let (data, tag) = self
            .data
            .ctor(name)
            .ok_or_else(|| TypeError::new(span, format!("unknown constructor `{name}`")))?;
        let arity = self.data.def(data).arity;
        let args: Vec<Type> = (0..arity).map(|_| self.cx.fresh()).collect();
        let fields = self.data.def(data).fields_at(data, tag, &args);
        Ok((data, tag, args, fields))
    }

    fn elab_bare_ctor(&mut self, name: &str, span: Span) -> TypeResult<TExpr> {
        let (data, tag, ty_args, fields) = self.ctor_info(name, span)?;
        let data_ty = Type::Data(data, ty_args);
        match fields.len() {
            0 => Ok(TExpr {
                kind: TExprKind::Ctor {
                    data,
                    tag,
                    args: Vec::new(),
                },
                ty: data_ty,
                span,
            }),
            1 => {
                // Eta-expand: `C` becomes `fn x => C x`.
                let param = self.fresh_name("eta");
                let field = fields.into_iter().next().expect("one field");
                let body = TExpr {
                    kind: TExprKind::Ctor {
                        data,
                        tag,
                        args: vec![TExpr {
                            kind: TExprKind::Var {
                                name: param.clone(),
                                kind: VarKind::Local,
                                inst: Some(Vec::new()),
                            },
                            ty: field.clone(),
                            span,
                        }],
                    },
                    ty: data_ty.clone(),
                    span,
                };
                Ok(TExpr {
                    ty: Type::arrow(field.clone(), data_ty),
                    kind: TExprKind::Lambda {
                        param,
                        param_ty: field,
                        body: Box::new(body),
                    },
                    span,
                })
            }
            _ => {
                // Eta-expand over the field tuple: `fn t => C (#1 t, ...)`.
                let param = self.fresh_name("eta");
                let tup_ty = Type::Tuple(fields.clone());
                let args = fields
                    .iter()
                    .enumerate()
                    .map(|(i, fty)| TExpr {
                        kind: TExprKind::Proj {
                            tuple: Box::new(TExpr {
                                kind: TExprKind::Var {
                                    name: param.clone(),
                                    kind: VarKind::Local,
                                    inst: Some(Vec::new()),
                                },
                                ty: tup_ty.clone(),
                                span,
                            }),
                            index: i as u32,
                        },
                        ty: fty.clone(),
                        span,
                    })
                    .collect();
                let body = TExpr {
                    kind: TExprKind::Ctor { data, tag, args },
                    ty: data_ty.clone(),
                    span,
                };
                Ok(TExpr {
                    ty: Type::arrow(tup_ty.clone(), data_ty),
                    kind: TExprKind::Lambda {
                        param,
                        param_ty: tup_ty,
                        body: Box::new(body),
                    },
                    span,
                })
            }
        }
    }

    fn elab_ctor_app(&mut self, name: &str, arg: &s::Expr, span: Span) -> TypeResult<TExpr> {
        let (data, tag, ty_args, fields) = self.ctor_info(name, span)?;
        let data_ty = Type::Data(data, ty_args);
        match fields.len() {
            0 => Err(TypeError::new(
                span,
                format!("constructor `{name}` takes no argument"),
            )),
            1 => {
                let ta = self.elab_expr(arg)?;
                self.cx.unify(&ta.ty, &fields[0], span)?;
                Ok(TExpr {
                    kind: TExprKind::Ctor {
                        data,
                        tag,
                        args: vec![ta],
                    },
                    ty: data_ty,
                    span,
                })
            }
            n => {
                if let s::ExprKind::Tuple(es) = &arg.kind {
                    if es.len() == n {
                        let mut targs = Vec::new();
                        for (e, fty) in es.iter().zip(&fields) {
                            let te = self.elab_expr(e)?;
                            self.cx.unify(&te.ty, fty, e.span)?;
                            targs.push(te);
                        }
                        return Ok(TExpr {
                            kind: TExprKind::Ctor {
                                data,
                                tag,
                                args: targs,
                            },
                            ty: data_ty,
                            span,
                        });
                    }
                }
                // General case: bind the tuple, project each field.
                let ta = self.elab_expr(arg)?;
                let tup_ty = Type::Tuple(fields.clone());
                self.cx.unify(&ta.ty, &tup_ty, span)?;
                let tmp = self.fresh_name("ctorarg");
                let args = fields
                    .iter()
                    .enumerate()
                    .map(|(i, fty)| TExpr {
                        kind: TExprKind::Proj {
                            tuple: Box::new(TExpr {
                                kind: TExprKind::Var {
                                    name: tmp.clone(),
                                    kind: VarKind::Local,
                                    inst: Some(Vec::new()),
                                },
                                ty: tup_ty.clone(),
                                span,
                            }),
                            index: i as u32,
                        },
                        ty: fty.clone(),
                        span,
                    })
                    .collect();
                let body = TExpr {
                    kind: TExprKind::Ctor { data, tag, args },
                    ty: data_ty.clone(),
                    span,
                };
                Ok(TExpr {
                    ty: data_ty,
                    kind: TExprKind::Let {
                        binds: vec![TLetBind::Val {
                            pat: TPat {
                                kind: TPatKind::Var(tmp),
                                ty: tup_ty,
                                span,
                            },
                            rhs: ta,
                            scheme: None,
                        }],
                        body: Box::new(body),
                    },
                    span,
                })
            }
        }
    }

    fn elab_binop(&mut self, op: BinOp, a: &s::Expr, b: &s::Expr, span: Span) -> TypeResult<TExpr> {
        // Short-circuit operators desugar to `if`.
        if op == BinOp::And || op == BinOp::Or {
            let ta = self.elab_expr(a)?;
            self.cx.unify(&ta.ty, &Type::Bool, a.span)?;
            let tb = self.elab_expr(b)?;
            self.cx.unify(&tb.ty, &Type::Bool, b.span)?;
            let lit = |v: bool| TExpr {
                kind: TExprKind::Bool(v),
                ty: Type::Bool,
                span,
            };
            let (then, els) = if op == BinOp::And {
                (tb, lit(false))
            } else {
                (lit(true), tb)
            };
            return Ok(TExpr {
                kind: TExprKind::If {
                    cond: Box::new(ta),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                ty: Type::Bool,
                span,
            });
        }
        let ta = self.elab_expr(a)?;
        let tb = self.elab_expr(b)?;
        // All remaining binary operators work on integers (structural
        // equality on aggregates is intentionally out of scope).
        self.cx.unify(&ta.ty, &Type::Int, a.span)?;
        self.cx.unify(&tb.ty, &Type::Int, b.span)?;
        let ty = if op.is_compare() {
            Type::Bool
        } else {
            Type::Int
        };
        Ok(TExpr {
            kind: TExprKind::BinOp {
                op,
                lhs: Box::new(ta),
                rhs: Box::new(tb),
            },
            ty,
            span,
        })
    }

    fn elab_pat(&mut self, pat: &s::Pat, expected: &Type) -> TypeResult<TPat> {
        let mut seen = HashSet::new();
        for v in pat.bound_vars() {
            if !seen.insert(v) {
                return Err(TypeError::new(
                    pat.span,
                    format!("variable `{v}` bound twice in pattern"),
                ));
            }
        }
        self.elab_pat_inner(pat, expected)
    }

    fn elab_pat_inner(&mut self, pat: &s::Pat, expected: &Type) -> TypeResult<TPat> {
        let span = pat.span;
        match &pat.kind {
            s::PatKind::Wild => Ok(TPat {
                kind: TPatKind::Wild,
                ty: expected.clone(),
                span,
            }),
            s::PatKind::Var(v) => {
                self.bind(
                    v.clone(),
                    Binding {
                        scheme: Scheme::mono(SchemeId(u32::MAX), expected.clone()),
                        kind: VarKind::Local,
                        rec_group: None,
                    },
                );
                Ok(TPat {
                    kind: TPatKind::Var(v.clone()),
                    ty: expected.clone(),
                    span,
                })
            }
            s::PatKind::Int(n) => {
                self.cx.unify(expected, &Type::Int, span)?;
                Ok(TPat {
                    kind: TPatKind::Int(*n),
                    ty: Type::Int,
                    span,
                })
            }
            s::PatKind::Bool(b) => {
                self.cx.unify(expected, &Type::Bool, span)?;
                Ok(TPat {
                    kind: TPatKind::Bool(*b),
                    ty: Type::Bool,
                    span,
                })
            }
            s::PatKind::Unit => {
                self.cx.unify(expected, &Type::Unit, span)?;
                Ok(TPat {
                    kind: TPatKind::Unit,
                    ty: Type::Unit,
                    span,
                })
            }
            s::PatKind::Tuple(ps) => {
                let tys: Vec<Type> = ps.iter().map(|_| self.cx.fresh()).collect();
                self.cx.unify(expected, &Type::Tuple(tys.clone()), span)?;
                let tps = ps
                    .iter()
                    .zip(&tys)
                    .map(|(p, t)| self.elab_pat_inner(p, t))
                    .collect::<TypeResult<Vec<_>>>()?;
                Ok(TPat {
                    kind: TPatKind::Tuple(tps),
                    ty: Type::Tuple(tys),
                    span,
                })
            }
            s::PatKind::Nil => {
                let elem = self.cx.fresh();
                self.cx.unify(expected, &Type::list(elem), span)?;
                Ok(TPat {
                    kind: TPatKind::Ctor {
                        data: crate::ty::LIST_DATA,
                        tag: crate::ty::NIL_TAG,
                        args: Vec::new(),
                    },
                    ty: self.cx.zonk(expected),
                    span,
                })
            }
            s::PatKind::Cons(h, t) => {
                let elem = self.cx.fresh();
                let list_ty = Type::list(elem.clone());
                self.cx.unify(expected, &list_ty, span)?;
                let th = self.elab_pat_inner(h, &elem)?;
                let tt = self.elab_pat_inner(t, &list_ty)?;
                Ok(TPat {
                    kind: TPatKind::Ctor {
                        data: crate::ty::LIST_DATA,
                        tag: crate::ty::CONS_TAG,
                        args: vec![th, tt],
                    },
                    ty: list_ty,
                    span,
                })
            }
            s::PatKind::Ascribe(inner, surface_ty) => {
                let mut tyvars = HashMap::new();
                let ann = self.conv_ty(surface_ty, &mut tyvars, true, span)?;
                self.cx.unify(expected, &ann, span)?;
                self.elab_pat_inner(inner, &ann)
            }
            s::PatKind::Ctor(name, arg) => {
                let (data, tag, ty_args, fields) = self.ctor_info(name, span)?;
                let data_ty = Type::Data(data, ty_args);
                self.cx.unify(expected, &data_ty, span)?;
                let args = match (fields.len(), arg) {
                    (0, None) => Vec::new(),
                    (0, Some(_)) => {
                        return Err(TypeError::new(
                            span,
                            format!("constructor `{name}` takes no argument"),
                        ))
                    }
                    (_, None) => {
                        return Err(TypeError::new(
                            span,
                            format!(
                                "constructor `{name}` expects {} field(s)",
                                fields.len()
                            ),
                        ))
                    }
                    (1, Some(p)) => vec![self.elab_pat_inner(p, &fields[0])?],
                    (n, Some(p)) => match &p.kind {
                        s::PatKind::Tuple(ps) if ps.len() == n => ps
                            .iter()
                            .zip(&fields)
                            .map(|(p, t)| self.elab_pat_inner(p, t))
                            .collect::<TypeResult<Vec<_>>>()?,
                        s::PatKind::Wild => fields
                            .iter()
                            .map(|t| {
                                Ok(TPat {
                                    kind: TPatKind::Wild,
                                    ty: t.clone(),
                                    span: p.span,
                                })
                            })
                            .collect::<TypeResult<Vec<_>>>()?,
                        _ => {
                            return Err(TypeError::new(
                                span,
                                format!(
                                    "constructor `{name}` pattern must destructure {n} fields with a tuple pattern"
                                ),
                            ))
                        }
                    },
                };
                Ok(TPat {
                    kind: TPatKind::Ctor { data, tag, args },
                    ty: data_ty,
                    span,
                })
            }
        }
    }
}

/// The value restriction: only these right-hand sides generalize.
fn is_syntactic_value(e: &s::Expr) -> bool {
    match &e.kind {
        s::ExprKind::Int(_)
        | s::ExprKind::Bool(_)
        | s::ExprKind::Unit
        | s::ExprKind::Var(_)
        | s::ExprKind::Ctor(_)
        | s::ExprKind::Lambda(_, _) => true,
        s::ExprKind::Tuple(es) | s::ExprKind::List(es) => es.iter().all(is_syntactic_value),
        s::ExprKind::Cons(h, t) => is_syntactic_value(h) && is_syntactic_value(t),
        s::ExprKind::App(f, arg) => {
            matches!(&f.kind, s::ExprKind::Ctor(_)) && is_syntactic_value(arg)
        }
        s::ExprKind::Ann(inner, _) => is_syntactic_value(inner),
        _ => false,
    }
}

/// Defensive check: no `inst: None` markers survive elaboration.
fn validate_insts(p: &TProgram) -> TypeResult<()> {
    fn check(e: &TExpr) -> TypeResult<()> {
        let mut bad: Option<Span> = None;
        let mut clone = e.clone();
        clone.visit_vars_mut(&mut |_, _, inst| {
            if inst.is_none() && bad.is_none() {
                bad = Some(Span::SYNTH);
            }
        });
        match bad {
            Some(span) => Err(TypeError::new(
                span,
                "internal error: unresolved recursive instantiation",
            )),
            None => Ok(()),
        }
    }
    for f in &p.funs {
        check(&f.body)?;
    }
    for g in &p.globals {
        check(&g.init)?;
    }
    check(&p.main)
}
