//! Datatype (variant record) definitions.
//!
//! Goldberg §2.3: variant records are traced by testing the discriminant at
//! GC time. A [`DataDef`] is the compile-time description the generated
//! routines consult: each constructor's field types are expressed over the
//! datatype's own generic parameters.

use crate::ty::{DataId, ParamId, SchemeId, Type, CONS_TAG, LIST_DATA, NIL_TAG};
use std::collections::HashMap;

/// Scheme id space reserved for datatype parameters. Datatype `DataId(d)`
/// uses `SchemeId(DATA_SCHEME_BASE + d)`; the elaborator allocates binder
/// scheme ids below this.
pub const DATA_SCHEME_BASE: u32 = 1 << 30;

/// The [`SchemeId`] owning the generic parameters of datatype `d`.
pub fn data_scheme(d: DataId) -> SchemeId {
    SchemeId(DATA_SCHEME_BASE + d.0)
}

/// The `index`-th generic parameter of datatype `d`.
pub fn data_param(d: DataId, index: u32) -> Type {
    Type::Param(ParamId {
        scheme: data_scheme(d),
        index,
    })
}

/// One constructor of a datatype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorDef {
    /// Surface name, e.g. `Cons`.
    pub name: String,
    /// Discriminant value stored in the heap object's first word.
    pub tag: u32,
    /// Field types, expressed over [`data_param`]s of the owning datatype.
    pub fields: Vec<Type>,
}

/// A datatype definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataDef {
    pub name: String,
    /// Number of generic parameters.
    pub arity: u32,
    pub ctors: Vec<CtorDef>,
}

impl DataDef {
    /// Field types of constructor `tag` instantiated at `args`.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is out of range or `args.len() != arity`.
    pub fn fields_at(&self, data: DataId, tag: u32, args: &[Type]) -> Vec<Type> {
        assert_eq!(args.len() as u32, self.arity, "datatype arity mismatch");
        let scheme = data_scheme(data);
        self.ctors[tag as usize]
            .fields
            .iter()
            .map(|t| {
                t.map_params(&mut |p| {
                    if p.scheme == scheme {
                        args[p.index as usize].clone()
                    } else {
                        Type::Param(p)
                    }
                })
            })
            .collect()
    }
}

/// The registry of all datatypes in a program, plus a constructor-name
/// index.
#[derive(Debug, Clone)]
pub struct DataEnv {
    defs: Vec<DataDef>,
    by_ctor: HashMap<String, (DataId, u32)>,
    by_name: HashMap<String, DataId>,
}

impl DataEnv {
    /// Creates an environment containing only the builtin `'a list`
    /// datatype (`DataId(0)`, constructors `Nil`/`Cons`).
    pub fn new() -> Self {
        let mut env = DataEnv {
            defs: Vec::new(),
            by_ctor: HashMap::new(),
            by_name: HashMap::new(),
        };
        let list = DataDef {
            name: "list".to_string(),
            arity: 1,
            ctors: vec![
                CtorDef {
                    name: "Nil".to_string(),
                    tag: NIL_TAG,
                    fields: Vec::new(),
                },
                CtorDef {
                    name: "Cons".to_string(),
                    tag: CONS_TAG,
                    fields: vec![
                        data_param(LIST_DATA, 0),
                        Type::Data(LIST_DATA, vec![data_param(LIST_DATA, 0)]),
                    ],
                },
            ],
        };
        let id = env.insert(list);
        debug_assert_eq!(id, LIST_DATA);
        env
    }

    /// Registers a datatype, indexing its constructors. Returns its id.
    pub fn insert(&mut self, def: DataDef) -> DataId {
        let id = DataId(self.defs.len() as u32);
        for c in &def.ctors {
            self.by_ctor.insert(c.name.clone(), (id, c.tag));
        }
        self.by_name.insert(def.name.clone(), id);
        self.defs.push(def);
        id
    }

    /// Replaces the constructors of `id`, indexing their names (used for
    /// mutually recursive datatype registration: ids are allocated first,
    /// then field types are filled in).
    pub fn set_ctors(&mut self, id: DataId, ctors: Vec<CtorDef>) {
        for c in &ctors {
            self.by_ctor.insert(c.name.clone(), (id, c.tag));
        }
        self.defs[id.0 as usize].ctors = ctors;
    }

    /// The definition of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this environment.
    pub fn def(&self, id: DataId) -> &DataDef {
        &self.defs[id.0 as usize]
    }

    /// Looks up a constructor by surface name.
    pub fn ctor(&self, name: &str) -> Option<(DataId, u32)> {
        self.by_ctor.get(name).copied()
    }

    /// Looks up a datatype by surface name.
    pub fn data_by_name(&self, name: &str) -> Option<DataId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered datatypes.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Always false: the builtin list is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over `(DataId, &DataDef)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DataId, &DataDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (DataId(i as u32), d))
    }
}

impl Default for DataEnv {
    fn default() -> Self {
        DataEnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_list_is_data_zero() {
        let env = DataEnv::new();
        assert_eq!(env.ctor("Nil"), Some((LIST_DATA, NIL_TAG)));
        assert_eq!(env.ctor("Cons"), Some((LIST_DATA, CONS_TAG)));
        assert_eq!(env.def(LIST_DATA).arity, 1);
    }

    #[test]
    fn fields_at_instantiates_params() {
        let env = DataEnv::new();
        let fields = env
            .def(LIST_DATA)
            .fields_at(LIST_DATA, CONS_TAG, &[Type::Int]);
        assert_eq!(fields, vec![Type::Int, Type::list(Type::Int)]);
    }

    #[test]
    fn user_datatype_roundtrip() {
        let mut env = DataEnv::new();
        let tree = DataDef {
            name: "tree".into(),
            arity: 1,
            ctors: vec![
                CtorDef {
                    name: "Leaf".into(),
                    tag: 0,
                    fields: vec![],
                },
                CtorDef {
                    name: "Node".into(),
                    tag: 1,
                    fields: vec![data_param(DataId(1), 0)],
                },
            ],
        };
        let id = env.insert(tree);
        assert_eq!(id, DataId(1));
        assert_eq!(env.ctor("Node"), Some((id, 1)));
        assert_eq!(env.data_by_name("tree"), Some(id));
        let fs = env.def(id).fields_at(id, 1, &[Type::Bool]);
        assert_eq!(fs, vec![Type::Bool]);
    }
}
