//! Unification engine.

use crate::error::{TypeError, TypeResult};
use crate::ty::{TvId, Type};
use tfgc_syntax::Span;

/// Inference context: allocates unification variables and maintains the
/// global substitution.
#[derive(Debug, Default)]
pub struct InferCtx {
    bindings: Vec<Option<Type>>,
}

impl InferCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        InferCtx::default()
    }

    /// Allocates a fresh unification variable.
    pub fn fresh(&mut self) -> Type {
        let id = TvId(self.bindings.len() as u32);
        self.bindings.push(None);
        Type::Var(id)
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.bindings.len()
    }

    /// Follows bindings until the head of `t` is not a bound variable.
    pub fn shallow_resolve(&self, t: &Type) -> Type {
        let mut cur = t.clone();
        while let Type::Var(v) = cur {
            match &self.bindings[v.0 as usize] {
                Some(bound) => cur = bound.clone(),
                None => return Type::Var(v),
            }
        }
        cur
    }

    /// Fully applies the substitution to `t`.
    pub fn zonk(&self, t: &Type) -> Type {
        match self.shallow_resolve(t) {
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| self.zonk(t)).collect()),
            Type::Data(d, ts) => Type::Data(d, ts.iter().map(|t| self.zonk(t)).collect()),
            Type::Arrow(a, b) => Type::arrow(self.zonk(&a), self.zonk(&b)),
            leaf => leaf,
        }
    }

    fn occurs(&self, v: TvId, t: &Type) -> bool {
        match self.shallow_resolve(t) {
            Type::Var(w) => v == w,
            Type::Tuple(ts) | Type::Data(_, ts) => ts.iter().any(|t| self.occurs(v, t)),
            Type::Arrow(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
            _ => false,
        }
    }

    /// Unifies `a` with `b`, extending the substitution.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] at `span` on constructor clash, arity
    /// mismatch, or occurs-check failure.
    pub fn unify(&mut self, a: &Type, b: &Type, span: Span) -> TypeResult<()> {
        let a = self.shallow_resolve(a);
        let b = self.shallow_resolve(b);
        match (&a, &b) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(()),
            (Type::Var(v), other) | (other, Type::Var(v)) => {
                if self.occurs(*v, other) {
                    return Err(TypeError::new(
                        span,
                        format!(
                            "occurs check: cannot construct infinite type ?{} = {other}",
                            v.0
                        ),
                    ));
                }
                self.bindings[v.0 as usize] = Some(other.clone());
                Ok(())
            }
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) | (Type::Unit, Type::Unit) => Ok(()),
            (Type::Param(p), Type::Param(q)) if p == q => Ok(()),
            (Type::Tuple(xs), Type::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y, span)?;
                }
                Ok(())
            }
            (Type::Arrow(a1, r1), Type::Arrow(a2, r2)) => {
                self.unify(a1, a2, span)?;
                self.unify(r1, r2, span)
            }
            (Type::Data(d1, xs), Type::Data(d2, ys)) if d1 == d2 && xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y, span)?;
                }
                Ok(())
            }
            _ => Err(TypeError::new(
                span,
                format!("type mismatch: expected {a}, found {b}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_syntax::Span;

    const S: Span = Span::SYNTH;

    #[test]
    fn unify_var_binds() {
        let mut cx = InferCtx::new();
        let v = cx.fresh();
        cx.unify(&v, &Type::Int, S).unwrap();
        assert_eq!(cx.zonk(&v), Type::Int);
    }

    #[test]
    fn unify_through_chains() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let b = cx.fresh();
        cx.unify(&a, &b, S).unwrap();
        cx.unify(&b, &Type::Bool, S).unwrap();
        assert_eq!(cx.zonk(&a), Type::Bool);
    }

    #[test]
    fn unify_structural() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let t1 = Type::list(a.clone());
        let t2 = Type::list(Type::Int);
        cx.unify(&t1, &t2, S).unwrap();
        assert_eq!(cx.zonk(&a), Type::Int);
    }

    #[test]
    fn occurs_check_fails() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let t = Type::list(a.clone());
        assert!(cx.unify(&a, &t, S).is_err());
    }

    #[test]
    fn mismatch_reports_zonked_types() {
        let mut cx = InferCtx::new();
        let err = cx.unify(&Type::Int, &Type::Bool, S).unwrap_err();
        assert!(err.message.contains("int"));
        assert!(err.message.contains("bool"));
    }

    #[test]
    fn arrow_unification() {
        let mut cx = InferCtx::new();
        let a = cx.fresh();
        let b = cx.fresh();
        let f1 = Type::arrow(a.clone(), b.clone());
        let f2 = Type::arrow(Type::Int, Type::Bool);
        cx.unify(&f1, &f2, S).unwrap();
        assert_eq!(cx.zonk(&a), Type::Int);
        assert_eq!(cx.zonk(&b), Type::Bool);
    }
}
