//! Typed abstract syntax (the elaborator's output).
//!
//! Every node carries its (zonked) [`Type`]. Uses of polymorphic bindings
//! carry their instantiation vector — for a use inside function `f`, the
//! instantiation is expressed over `f`'s own generic parameters, which is
//! exactly the static substitution θ that the polymorphic collector (§3)
//! evaluates when building the callee's type_gc_routine environment.

use crate::datatypes::DataEnv;
use crate::scheme::Scheme;
use crate::ty::{DataId, Type};
use tfgc_syntax::{BinOp, Span, UnOp};

/// How a variable occurrence resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// A function parameter or `val`-bound local (a frame slot).
    Local,
    /// A top-level `val` binding (a global).
    Global,
    /// A top-level `fun`.
    TopFun,
    /// A `let fun`-bound function (lambda-lifted during lowering).
    LetFun,
    /// A builtin such as `print`.
    Builtin,
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct TExpr {
    pub kind: TExprKind,
    pub ty: Type,
    pub span: Span,
}

/// The shape of a typed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TExprKind {
    Int(i64),
    Bool(bool),
    Unit,
    /// A variable use. `inst` is `None` only transiently during inference
    /// (monomorphic recursive uses); elaboration replaces it with the
    /// identity instantiation.
    Var {
        name: String,
        kind: VarKind,
        inst: Option<Vec<Type>>,
    },
    Tuple(Vec<TExpr>),
    /// Fully applied constructor with flattened fields (`x :: xs` is
    /// `Ctor { data: list, tag: Cons, args: [x, xs] }`).
    Ctor {
        data: DataId,
        tag: u32,
        args: Vec<TExpr>,
    },
    /// Tuple projection (introduced when adapting constructor arities).
    Proj {
        tuple: Box<TExpr>,
        index: u32,
    },
    App {
        f: Box<TExpr>,
        arg: Box<TExpr>,
    },
    BinOp {
        op: BinOp,
        lhs: Box<TExpr>,
        rhs: Box<TExpr>,
    },
    UnOp {
        op: UnOp,
        operand: Box<TExpr>,
    },
    If {
        cond: Box<TExpr>,
        then: Box<TExpr>,
        els: Box<TExpr>,
    },
    Case {
        scrut: Box<TExpr>,
        arms: Vec<TArm>,
    },
    Let {
        binds: Vec<TLetBind>,
        body: Box<TExpr>,
    },
    Lambda {
        param: String,
        param_ty: Type,
        body: Box<TExpr>,
    },
    Seq(Box<TExpr>, Box<TExpr>),
}

/// One typed `case` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct TArm {
    pub pat: TPat,
    pub body: TExpr,
}

/// A typed `let` binding.
#[derive(Debug, Clone, PartialEq)]
pub enum TLetBind {
    /// `val p = e`. `scheme` is present when the binding generalized (the
    /// pattern is then a single variable).
    Val {
        pat: TPat,
        rhs: TExpr,
        scheme: Option<Scheme>,
    },
    /// A mutually recursive `fun` group.
    Fun(Vec<TFun>),
}

/// A typed function (top-level or `let fun`).
#[derive(Debug, Clone, PartialEq)]
pub struct TFun {
    pub name: String,
    /// The binder that owns this function's generic parameters.
    pub scheme: Scheme,
    pub params: Vec<(String, Type)>,
    pub ret: Type,
    pub body: TExpr,
    pub span: Span,
}

/// A typed pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TPat {
    pub kind: TPatKind,
    pub ty: Type,
    pub span: Span,
}

/// The shape of a typed pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum TPatKind {
    Wild,
    Var(String),
    Int(i64),
    Bool(bool),
    Unit,
    Tuple(Vec<TPat>),
    /// Constructor pattern with flattened sub-patterns (one per field).
    Ctor {
        data: DataId,
        tag: u32,
        args: Vec<TPat>,
    },
}

/// A top-level `val` binding (a global variable; Goldberg §1.1: the GC
/// routine for a global is known statically, no table required).
#[derive(Debug, Clone, PartialEq)]
pub struct TGlobal {
    pub name: String,
    pub scheme: Scheme,
    pub init: TExpr,
    pub span: Span,
}

/// A fully elaborated program.
#[derive(Debug, Clone)]
pub struct TProgram {
    pub data_env: DataEnv,
    pub funs: Vec<TFun>,
    pub globals: Vec<TGlobal>,
    pub main: TExpr,
}

impl TExpr {
    /// Applies `f` to every type stored in this subtree (node types,
    /// instantiation vectors, parameter/pattern types, nested schemes).
    pub fn map_types_mut(&mut self, f: &mut impl FnMut(&mut Type)) {
        f(&mut self.ty);
        match &mut self.kind {
            TExprKind::Int(_) | TExprKind::Bool(_) | TExprKind::Unit => {}
            TExprKind::Var { inst, .. } => {
                if let Some(ts) = inst {
                    for t in ts {
                        f(t);
                    }
                }
            }
            TExprKind::Tuple(es) | TExprKind::Ctor { args: es, .. } => {
                for e in es {
                    e.map_types_mut(f);
                }
            }
            TExprKind::Proj { tuple, .. } => tuple.map_types_mut(f),
            TExprKind::App { f: fun, arg } => {
                fun.map_types_mut(f);
                arg.map_types_mut(f);
            }
            TExprKind::BinOp { lhs, rhs, .. } => {
                lhs.map_types_mut(f);
                rhs.map_types_mut(f);
            }
            TExprKind::UnOp { operand, .. } => operand.map_types_mut(f),
            TExprKind::If { cond, then, els } => {
                cond.map_types_mut(f);
                then.map_types_mut(f);
                els.map_types_mut(f);
            }
            TExprKind::Case { scrut, arms } => {
                scrut.map_types_mut(f);
                for arm in arms {
                    arm.pat.map_types_mut(f);
                    arm.body.map_types_mut(f);
                }
            }
            TExprKind::Let { binds, body } => {
                for b in binds {
                    match b {
                        TLetBind::Val { pat, rhs, scheme } => {
                            pat.map_types_mut(f);
                            rhs.map_types_mut(f);
                            if let Some(s) = scheme {
                                f(&mut s.ty);
                            }
                        }
                        TLetBind::Fun(funs) => {
                            for tf in funs {
                                tf.map_types_mut(f);
                            }
                        }
                    }
                }
                body.map_types_mut(f);
            }
            TExprKind::Lambda { param_ty, body, .. } => {
                f(param_ty);
                body.map_types_mut(f);
            }
            TExprKind::Seq(a, b) => {
                a.map_types_mut(f);
                b.map_types_mut(f);
            }
        }
    }

    /// Applies `g` to every `Var` node in this subtree.
    pub fn visit_vars_mut(
        &mut self,
        g: &mut impl FnMut(&str, &mut VarKind, &mut Option<Vec<Type>>),
    ) {
        match &mut self.kind {
            TExprKind::Var { name, kind, inst } => g(name, kind, inst),
            TExprKind::Int(_) | TExprKind::Bool(_) | TExprKind::Unit => {}
            TExprKind::Tuple(es) | TExprKind::Ctor { args: es, .. } => {
                for e in es {
                    e.visit_vars_mut(g);
                }
            }
            TExprKind::Proj { tuple, .. } => tuple.visit_vars_mut(g),
            TExprKind::App { f, arg } => {
                f.visit_vars_mut(g);
                arg.visit_vars_mut(g);
            }
            TExprKind::BinOp { lhs, rhs, .. } => {
                lhs.visit_vars_mut(g);
                rhs.visit_vars_mut(g);
            }
            TExprKind::UnOp { operand, .. } => operand.visit_vars_mut(g),
            TExprKind::If { cond, then, els } => {
                cond.visit_vars_mut(g);
                then.visit_vars_mut(g);
                els.visit_vars_mut(g);
            }
            TExprKind::Case { scrut, arms } => {
                scrut.visit_vars_mut(g);
                for arm in arms {
                    arm.body.visit_vars_mut(g);
                }
            }
            TExprKind::Let { binds, body } => {
                for b in binds {
                    match b {
                        TLetBind::Val { rhs, .. } => rhs.visit_vars_mut(g),
                        TLetBind::Fun(funs) => {
                            for tf in funs {
                                tf.body.visit_vars_mut(g);
                            }
                        }
                    }
                }
                body.visit_vars_mut(g);
            }
            TExprKind::Lambda { body, .. } => body.visit_vars_mut(g),
            TExprKind::Seq(a, b) => {
                a.visit_vars_mut(g);
                b.visit_vars_mut(g);
            }
        }
    }
}

impl TPat {
    /// Applies `f` to every type in the pattern.
    pub fn map_types_mut(&mut self, f: &mut impl FnMut(&mut Type)) {
        f(&mut self.ty);
        match &mut self.kind {
            TPatKind::Tuple(ps) | TPatKind::Ctor { args: ps, .. } => {
                for p in ps {
                    p.map_types_mut(f);
                }
            }
            _ => {}
        }
    }

    /// Variables bound by the pattern, with their types, left to right.
    pub fn bindings(&self) -> Vec<(&str, &Type)> {
        let mut out = Vec::new();
        self.collect_bindings(&mut out);
        out
    }

    fn collect_bindings<'p>(&'p self, out: &mut Vec<(&'p str, &'p Type)>) {
        match &self.kind {
            TPatKind::Var(v) => out.push((v, &self.ty)),
            TPatKind::Tuple(ps) | TPatKind::Ctor { args: ps, .. } => {
                for p in ps {
                    p.collect_bindings(out);
                }
            }
            _ => {}
        }
    }
}

impl TFun {
    /// Applies `f` to every type in the function (signature and body).
    pub fn map_types_mut(&mut self, f: &mut impl FnMut(&mut Type)) {
        for (_, t) in &mut self.params {
            f(t);
        }
        f(&mut self.ret);
        f(&mut self.scheme.ty);
        self.body.map_types_mut(f);
    }

    /// The function's curried arrow type.
    pub fn arrow_ty(&self) -> Type {
        Type::arrow_n(self.params.iter().map(|(_, t)| t.clone()), self.ret.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::TvId;

    fn e(kind: TExprKind, ty: Type) -> TExpr {
        TExpr {
            kind,
            ty,
            span: Span::SYNTH,
        }
    }

    #[test]
    fn map_types_reaches_inst() {
        let mut x = e(
            TExprKind::Var {
                name: "f".into(),
                kind: VarKind::TopFun,
                inst: Some(vec![Type::Var(TvId(4))]),
            },
            Type::Var(TvId(4)),
        );
        let mut count = 0;
        x.map_types_mut(&mut |t| {
            if matches!(t, Type::Var(_)) {
                *t = Type::Int;
                count += 1;
            }
        });
        assert_eq!(count, 2);
        match x.kind {
            TExprKind::Var { inst: Some(ts), .. } => assert_eq!(ts, vec![Type::Int]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn pattern_bindings_in_order() {
        let p = TPat {
            kind: TPatKind::Tuple(vec![
                TPat {
                    kind: TPatKind::Var("a".into()),
                    ty: Type::Int,
                    span: Span::SYNTH,
                },
                TPat {
                    kind: TPatKind::Var("b".into()),
                    ty: Type::Bool,
                    span: Span::SYNTH,
                },
            ]),
            ty: Type::Tuple(vec![Type::Int, Type::Bool]),
            span: Span::SYNTH,
        };
        let bs = p.bindings();
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].0, "a");
        assert_eq!(*bs[1].1, Type::Bool);
    }
}
