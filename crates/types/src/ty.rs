//! Semantic types.
//!
//! During inference types contain unification variables ([`Type::Var`]).
//! When a `let`/`fun` binding is generalized, the quantified variables are
//! rewritten to *generic parameters* ([`Type::Param`]), each identified by
//! the [`SchemeId`] of the binding that introduced it. Generic parameters
//! are what Goldberg's polymorphic GC scheme (§3) must resolve at collection
//! time: a frame whose slot types mention `Param(p)` receives a
//! type_gc_routine for `p` from its caller's frame routine.

use std::collections::BTreeSet;
use std::fmt;

/// A unification variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TvId(pub u32);

/// Identifies the generalization point (a `fun` or polymorphic `val`
/// binding) that owns a set of generic parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemeId(pub u32);

/// A generic type parameter: the `index`-th quantified variable of the
/// binding `scheme`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId {
    pub scheme: SchemeId,
    pub index: u32,
}

/// Identifies a datatype declaration. `DataId(0)` is always the builtin
/// `'a list`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(pub u32);

/// The builtin list datatype.
pub const LIST_DATA: DataId = DataId(0);
/// Tag of the `[]` constructor of the builtin list.
pub const NIL_TAG: u32 = 0;
/// Tag of the `::` constructor of the builtin list.
pub const CONS_TAG: u32 = 1;

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Int,
    Bool,
    Unit,
    /// Unification variable (inference-time only; none survive elaboration).
    Var(TvId),
    /// Generic parameter of an enclosing generalized binding.
    Param(ParamId),
    /// Tuple of arity ≥ 2.
    Tuple(Vec<Type>),
    /// Function type.
    Arrow(Box<Type>, Box<Type>),
    /// A datatype applied to its arguments (`list` is `Data(LIST_DATA, _)`).
    Data(DataId, Vec<Type>),
}

impl Type {
    /// `t list`.
    pub fn list(elem: Type) -> Type {
        Type::Data(LIST_DATA, vec![elem])
    }

    /// `a -> b`.
    pub fn arrow(a: Type, b: Type) -> Type {
        Type::Arrow(Box::new(a), Box::new(b))
    }

    /// Curried arrow `t1 -> t2 -> ... -> ret`.
    pub fn arrow_n(params: impl IntoIterator<Item = Type>, ret: Type) -> Type {
        let params: Vec<Type> = params.into_iter().collect();
        params
            .into_iter()
            .rev()
            .fold(ret, |acc, p| Type::arrow(p, acc))
    }

    /// True when the type contains no [`Type::Var`] and no [`Type::Param`].
    pub fn is_ground(&self) -> bool {
        match self {
            Type::Int | Type::Bool | Type::Unit => true,
            Type::Var(_) | Type::Param(_) => false,
            Type::Tuple(ts) | Type::Data(_, ts) => ts.iter().all(Type::is_ground),
            Type::Arrow(a, b) => a.is_ground() && b.is_ground(),
        }
    }

    /// Collects unification variables into `out` in first-occurrence order.
    pub fn free_vars(&self, out: &mut Vec<TvId>) {
        match self {
            Type::Var(v) if !out.contains(v) => {
                out.push(*v);
            }
            Type::Tuple(ts) | Type::Data(_, ts) => {
                for t in ts {
                    t.free_vars(out);
                }
            }
            Type::Arrow(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            _ => {}
        }
    }

    /// Collects generic parameters appearing in the type.
    pub fn params(&self, out: &mut BTreeSet<ParamId>) {
        match self {
            Type::Param(p) => {
                out.insert(*p);
            }
            Type::Tuple(ts) | Type::Data(_, ts) => {
                for t in ts {
                    t.params(out);
                }
            }
            Type::Arrow(a, b) => {
                a.params(out);
                b.params(out);
            }
            _ => {}
        }
    }

    /// Applies `f` to every [`Type::Var`] leaf, rebuilding the type.
    pub fn map_vars(&self, f: &mut impl FnMut(TvId) -> Type) -> Type {
        match self {
            Type::Var(v) => f(*v),
            Type::Int | Type::Bool | Type::Unit | Type::Param(_) => self.clone(),
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| t.map_vars(f)).collect()),
            Type::Data(d, ts) => Type::Data(*d, ts.iter().map(|t| t.map_vars(f)).collect()),
            Type::Arrow(a, b) => Type::arrow(a.map_vars(f), b.map_vars(f)),
        }
    }

    /// Applies `f` to every [`Type::Param`] leaf, rebuilding the type.
    pub fn map_params(&self, f: &mut impl FnMut(ParamId) -> Type) -> Type {
        match self {
            Type::Param(p) => f(*p),
            Type::Int | Type::Bool | Type::Unit | Type::Var(_) => self.clone(),
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| t.map_params(f)).collect()),
            Type::Data(d, ts) => Type::Data(*d, ts.iter().map(|t| t.map_params(f)).collect()),
            Type::Arrow(a, b) => Type::arrow(a.map_params(f), b.map_params(f)),
        }
    }

    /// Splits a curried arrow into (argument types, final result).
    pub fn uncurry(&self) -> (Vec<&Type>, &Type) {
        let mut args = Vec::new();
        let mut cur = self;
        while let Type::Arrow(a, b) = cur {
            args.push(a.as_ref());
            cur = b;
        }
        (args, cur)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, 0, f)
    }
}

fn fmt_prec(t: &Type, prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Type::Int => write!(f, "int"),
        Type::Bool => write!(f, "bool"),
        Type::Unit => write!(f, "unit"),
        Type::Var(TvId(n)) => write!(f, "?{n}"),
        Type::Param(p) => write!(f, "'p{}_{}", p.scheme.0, p.index),
        Type::Tuple(ts) => {
            if prec >= 1 {
                write!(f, "(")?;
            }
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    write!(f, " * ")?;
                }
                fmt_prec(t, 2, f)?;
            }
            if prec >= 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Arrow(a, b) => {
            if prec >= 1 {
                write!(f, "(")?;
            }
            fmt_prec(a, 1, f)?;
            write!(f, " -> ")?;
            fmt_prec(b, 0, f)?;
            if prec >= 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Data(d, args) => {
            if *d == LIST_DATA {
                fmt_prec(&args[0], 2, f)?;
                return write!(f, " list");
            }
            match args.len() {
                0 => write!(f, "data{}", d.0),
                1 => {
                    fmt_prec(&args[0], 2, f)?;
                    write!(f, " data{}", d.0)
                }
                _ => {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        fmt_prec(a, 0, f)?;
                    }
                    write!(f, ") data{}", d.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrow_n_builds_curried_type() {
        let t = Type::arrow_n([Type::Int, Type::Bool], Type::Unit);
        assert_eq!(
            t,
            Type::arrow(Type::Int, Type::arrow(Type::Bool, Type::Unit))
        );
        let (args, ret) = t.uncurry();
        assert_eq!(args.len(), 2);
        assert_eq!(*ret, Type::Unit);
    }

    #[test]
    fn groundness() {
        assert!(Type::list(Type::Int).is_ground());
        assert!(!Type::list(Type::Var(TvId(0))).is_ground());
        let p = Type::Param(ParamId {
            scheme: SchemeId(0),
            index: 0,
        });
        assert!(!p.is_ground());
    }

    #[test]
    fn free_vars_first_occurrence_order() {
        let t = Type::Tuple(vec![
            Type::Var(TvId(3)),
            Type::Var(TvId(1)),
            Type::Var(TvId(3)),
        ]);
        let mut vs = Vec::new();
        t.free_vars(&mut vs);
        assert_eq!(vs, vec![TvId(3), TvId(1)]);
    }

    #[test]
    fn display_is_readable() {
        let t = Type::arrow(
            Type::list(Type::Int),
            Type::Tuple(vec![Type::Int, Type::Bool]),
        );
        assert_eq!(t.to_string(), "int list -> int * bool");
    }

    #[test]
    fn map_params_substitutes() {
        let p = ParamId {
            scheme: SchemeId(7),
            index: 0,
        };
        let t = Type::list(Type::Param(p));
        let s = t.map_params(&mut |q| {
            assert_eq!(q, p);
            Type::Bool
        });
        assert_eq!(s, Type::list(Type::Bool));
    }
}
