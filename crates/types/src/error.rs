//! Type-checking errors.

use std::fmt;
use tfgc_syntax::Span;

/// An error produced during type inference or elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    pub span: Span,
    pub message: String,
}

impl TypeError {
    /// Creates a new error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        TypeError {
            span,
            message: message.into(),
        }
    }

    /// Renders the error with line/column information from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("type error at {line}:{col}: {}", self.message)
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Result alias for inference functions.
pub type TypeResult<T> = Result<T, TypeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message() {
        let e = TypeError::new(Span::new(1, 2), "mismatch");
        assert!(e.to_string().contains("mismatch"));
        assert_eq!(e.render("abc"), "type error at 1:2: mismatch");
    }
}
