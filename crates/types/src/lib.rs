//! # tfgc-types — Hindley–Milner inference for TFML
//!
//! Elaborates parsed TFML ([`tfgc_syntax`]) into a typed AST whose every
//! node carries its type, and whose every use of a polymorphic binding
//! carries the static instantiation vector θ. In Goldberg's polymorphic
//! tag-free collector (PLDI 1991, §3), θ is exactly what a caller's
//! `frame_gc_routine` evaluates — under its own type_gc_routine
//! environment — to parameterize the callee's frame routine.
//!
//! ```
//! use tfgc_syntax::parse_program;
//! use tfgc_types::{elaborate, is_monomorphic, Type};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ast = parse_program(
//!     "fun append [] ys = ys
//!        | append (x :: xs) ys = x :: append xs ys ;
//!      append [1, 2] [3]",
//! )?;
//! let typed = elaborate(&ast)?;
//! // `append` is polymorphic: forall 'a. 'a list -> 'a list -> 'a list
//! assert_eq!(typed.funs[0].scheme.num_params, 1);
//! assert!(!is_monomorphic(&typed));
//! assert_eq!(typed.main.ty, Type::list(Type::Int));
//! # Ok(())
//! # }
//! ```

pub mod datatypes;
pub mod error;
pub mod infer;
pub mod mono;
pub mod scheme;
pub mod tast;
pub mod ty;
pub mod unify;

pub use datatypes::{data_param, data_scheme, CtorDef, DataDef, DataEnv};
pub use error::{TypeError, TypeResult};
pub use infer::elaborate;
pub use mono::is_monomorphic;
pub use scheme::Scheme;
pub use tast::{
    TArm, TExpr, TExprKind, TFun, TGlobal, TLetBind, TPat, TPatKind, TProgram, VarKind,
};
pub use ty::{DataId, ParamId, SchemeId, TvId, Type, CONS_TAG, LIST_DATA, NIL_TAG};
pub use unify::InferCtx;

#[cfg(test)]
mod tests {
    use super::*;
    use tfgc_syntax::parse_program;

    fn typed(src: &str) -> TProgram {
        elaborate(&parse_program(src).expect("parse")).expect("elaborate")
    }

    fn typed_err(src: &str) -> TypeError {
        elaborate(&parse_program(src).expect("parse")).expect_err("expected type error")
    }

    #[test]
    fn literals_and_arith() {
        let p = typed("1 + 2 * 3");
        assert_eq!(p.main.ty, Type::Int);
    }

    #[test]
    fn monomorphic_function() {
        let p = typed("fun double x = x + x ; double 21");
        assert_eq!(p.funs[0].scheme.num_params, 0);
        assert_eq!(p.funs[0].arrow_ty(), Type::arrow(Type::Int, Type::Int));
        assert!(is_monomorphic(&p));
    }

    #[test]
    fn polymorphic_identity() {
        let p = typed("fun id x = x ; id 1");
        assert_eq!(p.funs[0].scheme.num_params, 1);
        assert_eq!(p.main.ty, Type::Int);
        assert!(!is_monomorphic(&p));
    }

    #[test]
    fn instantiations_recorded_at_use() {
        let p = typed("fun id x = x ; (id 1, id true)");
        // The two uses of `id` carry distinct ground instantiations.
        let mut insts = Vec::new();
        let mut main = p.main.clone();
        main.visit_vars_mut(&mut |name, _, inst| {
            if name == "id" {
                insts.push(inst.clone().expect("resolved"));
            }
        });
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0], vec![Type::Int]);
        assert_eq!(insts[1], vec![Type::Bool]);
    }

    #[test]
    fn paper_append_is_polymorphic() {
        let p = typed(
            "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ;
             append [1] [2]",
        );
        let f = &p.funs[0];
        assert_eq!(f.scheme.num_params, 1);
        // 'a list -> 'a list -> 'a list
        let (args, ret) = f.scheme.ty.uncurry();
        assert_eq!(args.len(), 2);
        assert_eq!(args[0], args[1]);
        assert_eq!(args[0], ret);
    }

    #[test]
    fn monomorphic_append_with_annotation() {
        let p = typed(
            "fun append [] (ys : int list) = ys
               | append (x :: xs) ys = x :: append xs ys ;
             append [1] [2]",
        );
        assert_eq!(p.funs[0].scheme.num_params, 0);
        assert!(is_monomorphic(&p));
    }

    #[test]
    fn recursive_use_gets_identity_instantiation() {
        let p = typed("fun len xs = case xs of [] => 0 | _ :: t => 1 + len t ; len [true]");
        let f = &p.funs[0];
        assert_eq!(f.scheme.num_params, 1);
        let mut rec_inst = None;
        let mut body = f.body.clone();
        body.visit_vars_mut(&mut |name, _, inst| {
            if name == "len" {
                rec_inst = inst.clone();
            }
        });
        let inst = rec_inst.expect("recursive use present").clone();
        assert_eq!(inst.len(), 1);
        // Identity: the instantiation is the function's own parameter.
        assert_eq!(
            inst[0],
            Type::Param(ParamId {
                scheme: f.scheme.id,
                index: 0
            })
        );
    }

    #[test]
    fn datatype_and_case() {
        let p = typed(
            "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree ;
             fun size t = case t of Leaf => 0 | Node (l, _, r) => 1 + size l + size r ;
             size (Node (Leaf, 5, Leaf))",
        );
        assert_eq!(p.main.ty, Type::Int);
        assert_eq!(p.funs[0].scheme.num_params, 1);
    }

    #[test]
    fn higher_order_map() {
        let p = typed(
            "fun map f xs = case xs of [] => [] | x :: rest => f x :: map f rest ;
             map (fn x => x + 1) [1, 2, 3]",
        );
        assert_eq!(p.funs[0].scheme.num_params, 2);
        assert_eq!(p.main.ty, Type::list(Type::Int));
    }

    #[test]
    fn mutual_recursion_types() {
        let p = typed(
            "fun even n = if n = 0 then true else odd (n - 1)
             and odd n = if n = 0 then false else even (n - 1) ;
             even 10",
        );
        assert_eq!(p.funs.len(), 2);
        assert_eq!(p.main.ty, Type::Bool);
        assert!(is_monomorphic(&p));
    }

    #[test]
    fn value_restriction_blocks_generalization() {
        // `id id` is not a syntactic value, so `f` stays monomorphic; using
        // it at two types must fail.
        let err = typed_err(
            "fun id x = x ;
             let val f = id id in (f 1, f true) end",
        );
        assert!(err.message.contains("mismatch"));
    }

    #[test]
    fn let_polymorphism_with_value_rhs() {
        let p = typed("let val f = fn x => x in (f 1, f true) end");
        assert_eq!(p.main.ty, Type::Tuple(vec![Type::Int, Type::Bool]));
    }

    #[test]
    fn paper_polymorphic_f_example() {
        // §3: fun f x = let val y = [x, x] in (y, [3]) end ... (f [true], f 7)
        let p = typed(
            "fun f x = let val y = [x, x] in (y, [3]) end ;
             (f [true], f 7)",
        );
        assert_eq!(p.funs[0].scheme.num_params, 1);
        assert_eq!(
            p.main.ty,
            Type::Tuple(vec![
                Type::Tuple(vec![
                    Type::list(Type::list(Type::Bool)),
                    Type::list(Type::Int)
                ]),
                Type::Tuple(vec![Type::list(Type::Int), Type::list(Type::Int)]),
            ])
        );
    }

    #[test]
    fn unconstrained_defaults_to_int() {
        let p = typed("let val xs = [] in xs end");
        assert_eq!(p.main.ty, Type::list(Type::Int));
    }

    #[test]
    fn rejects_unbound_variable() {
        let err = typed_err("x + 1");
        assert!(err.message.contains("unbound variable"));
    }

    #[test]
    fn rejects_bad_ctor_arity() {
        let err = typed_err(
            "datatype t = C of int * int ;
             case C (1, 2) of C x => x",
        );
        assert!(err.message.contains("destructure"));
    }

    #[test]
    fn rejects_duplicate_pattern_variable() {
        let err = typed_err("case (1, 2) of (x, x) => x");
        assert!(err.message.contains("bound twice"));
    }

    #[test]
    fn rejects_if_branch_mismatch() {
        let err = typed_err("if true then 1 else false");
        assert!(err.message.contains("mismatch"));
    }

    #[test]
    fn rejects_occurs_check() {
        let err = typed_err("fun f x = x x ; 0");
        assert!(err.message.contains("infinite type"));
    }

    #[test]
    fn globals_elaborate() {
        let p = typed(
            "val base = 10 ;
             fun add x = x + base ;
             add 5",
        );
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].scheme.ty, Type::Int);
        assert!(is_monomorphic(&p));
    }

    #[test]
    fn polymorphic_global_value() {
        let p = typed(
            "val empty = [] ;
             fun one x = x :: empty ;
             (one 1, one true)",
        );
        assert_eq!(p.globals[0].scheme.num_params, 1);
    }

    #[test]
    fn ctor_used_as_function_value() {
        let p = typed(
            "datatype box = B of int ;
             fun map f xs = case xs of [] => [] | x :: rest => f x :: map f rest ;
             map B [1, 2]",
        );
        match &p.main.ty {
            Type::Data(LIST_DATA, args) => {
                assert!(matches!(args[0], Type::Data(_, _)));
            }
            other => panic!("expected box list, got {other}"),
        }
    }

    #[test]
    fn print_is_builtin() {
        let p = typed("(print 1; print 2; 0)");
        assert_eq!(p.main.ty, Type::Int);
    }

    #[test]
    fn nested_polymorphic_lets() {
        let p = typed(
            "fun outer x =
               let fun inner y = (x, y) in (inner 1, inner true) end ;
             outer 9",
        );
        // outer is polymorphic in x; inner is polymorphic in y but fixed
        // in x.
        assert_eq!(p.funs[0].scheme.num_params, 1);
    }

    #[test]
    fn seq_keeps_rhs_type() {
        let p = typed("(print 5; [1])");
        assert_eq!(p.main.ty, Type::list(Type::Int));
    }

    #[test]
    fn variant_record_paper_2_3() {
        // §2.3: ML datatypes are the variant records of Pascal/Ada.
        let p = typed(
            "datatype shape = Circle of int | Rect of int * int | Point ;
             fun area s = case s of Circle r => 3 * r * r | Rect (w, h) => w * h | Point => 0 ;
             area (Rect (3, 4))",
        );
        assert_eq!(p.main.ty, Type::Int);
        assert!(is_monomorphic(&p));
    }
}
