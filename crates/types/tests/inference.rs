//! Inference corner cases beyond the unit tests.

use tfgc_syntax::parse_program;
use tfgc_types::{elaborate, is_monomorphic, TExprKind, TProgram, Type};

fn typed(src: &str) -> TProgram {
    elaborate(&parse_program(src).expect("parse")).expect("elaborate")
}

fn typed_err(src: &str) -> String {
    elaborate(&parse_program(src).expect("parse"))
        .expect_err("expected type error")
        .message
}

#[test]
fn shadowing_resolves_to_innermost() {
    let p = typed("let val x = 1 in let val x = true in (x, 1) end end");
    assert_eq!(p.main.ty, Type::Tuple(vec![Type::Bool, Type::Int]));
}

#[test]
fn curried_partial_application_types() {
    let p = typed("fun add3 a b c = a + b + c ; add3 1 2");
    assert_eq!(p.main.ty, Type::arrow(Type::Int, Type::Int));
}

#[test]
fn polymorphic_compose() {
    let p = typed(
        "fun compose f g x = f (g x) ;
         compose (fn n => n + 1) (fn b => if b then 1 else 0) true",
    );
    assert_eq!(p.funs[0].scheme.num_params, 3);
    assert_eq!(p.main.ty, Type::Int);
}

#[test]
fn nested_generalization_is_independent() {
    // inner's scheme must not capture outer's parameter.
    let p = typed(
        "fun outer x =
           let fun inner y = y in (inner x, inner 1, inner true) end ;
         outer [1]",
    );
    let outer = &p.funs[0];
    assert_eq!(outer.scheme.num_params, 1);
}

#[test]
fn mutual_recursion_shares_quantified_vars() {
    let p = typed(
        "fun f xs = case xs of [] => 0 | _ :: t => g t
         and g xs = case xs of [] => 1 | _ :: t => f t ;
         f [true, false]",
    );
    assert_eq!(p.funs[0].scheme.num_params, 1);
    assert_eq!(p.funs[1].scheme.num_params, 1);
    assert_eq!(p.main.ty, Type::Int);
}

#[test]
fn annotation_can_restrict_polymorphism() {
    let poly = typed("fun id x = x ; id");
    assert_eq!(poly.funs[0].scheme.num_params, 1);
    let mono = typed("fun id (x : int) = x ; id");
    assert_eq!(mono.funs[0].scheme.num_params, 0);
    assert!(is_monomorphic(&mono));
}

#[test]
fn bool_equality_is_rejected() {
    // `=` is integer-only in TFML (documented restriction).
    let msg = typed_err("true = false");
    assert!(msg.contains("mismatch"), "{msg}");
}

#[test]
fn list_element_types_must_agree() {
    let msg = typed_err("[1, true]");
    assert!(msg.contains("mismatch"), "{msg}");
}

#[test]
fn case_arms_must_agree() {
    let msg = typed_err("case [1] of [] => 0 | x :: _ => true");
    assert!(msg.contains("mismatch"), "{msg}");
}

#[test]
fn scrutinee_must_match_patterns() {
    let msg = typed_err("case 1 of [] => 0 | _ => 1");
    assert!(msg.contains("mismatch"), "{msg}");
}

#[test]
fn ctor_of_wrong_datatype_rejected() {
    let msg = typed_err(
        "datatype a = A of int ;
         datatype b = B of int ;
         case A 1 of B _ => 0",
    );
    assert!(msg.contains("mismatch"), "{msg}");
}

#[test]
fn duplicate_top_level_names_rejected() {
    let msg = typed_err("fun f x = x ; fun f y = y ; 0");
    assert!(msg.contains("duplicate top-level"), "{msg}");
    let msg2 = typed_err("val a = 1 ; val a = 2 ; a");
    assert!(msg2.contains("duplicate top-level"), "{msg2}");
}

#[test]
fn duplicate_datatype_rejected() {
    let msg = typed_err("datatype t = A ; datatype t = B ; 0");
    assert!(msg.contains("duplicate datatype"), "{msg}");
}

#[test]
fn duplicate_ctor_rejected() {
    let msg = typed_err("datatype t = A ; datatype u = A of int ; 0");
    assert!(msg.contains("duplicate constructor"), "{msg}");
}

#[test]
fn unknown_type_in_datatype_rejected() {
    let msg = typed_err("datatype t = C of missing ; 0");
    assert!(msg.contains("unknown type"), "{msg}");
}

#[test]
fn unbound_tyvar_in_datatype_rejected() {
    let msg = typed_err("datatype t = C of 'a ; 0");
    assert!(msg.contains("unbound type variable"), "{msg}");
}

#[test]
fn wrong_datatype_arity_in_annotation_rejected() {
    let msg = typed_err(
        "datatype 'a box = B of 'a ;
         (B 1 : (int, bool) box)",
    );
    assert!(msg.contains("expects"), "{msg}");
}

#[test]
fn instantiations_inside_polymorphic_bodies_use_params() {
    // Inside `wrap`, the call to `pair` instantiates with wrap's own
    // parameter — the θ the polymorphic collector evaluates.
    let p = typed(
        "fun pair x = (x, x) ;
         fun wrap y = pair [y] ;
         wrap 3",
    );
    let wrap = &p.funs[1];
    let wrap_scheme = wrap.scheme.id;
    let mut found = false;
    let mut body = wrap.body.clone();
    body.visit_vars_mut(&mut |name, _, inst| {
        if name.starts_with("pair") {
            let inst = inst.clone().expect("resolved");
            match &inst[0] {
                Type::Data(d, args) => {
                    assert_eq!(*d, tfgc_types::LIST_DATA);
                    match &args[0] {
                        Type::Param(p) => assert_eq!(p.scheme, wrap_scheme),
                        other => panic!("expected wrap's param, got {other}"),
                    }
                }
                other => panic!("expected list instantiation, got {other}"),
            }
            found = true;
        }
    });
    assert!(found, "call to pair present");
}

#[test]
fn seq_discards_lhs_type() {
    let p = typed("(print 1; true)");
    assert_eq!(p.main.ty, Type::Bool);
}

#[test]
fn large_tuple_types() {
    let p = typed("(1, true, (), [1], (2, 3))");
    match &p.main.ty {
        Type::Tuple(ts) => assert_eq!(ts.len(), 5),
        other => panic!("expected tuple, got {other}"),
    }
}

#[test]
fn main_never_contains_unification_vars() {
    // Defaulting must scrub every leftover variable.
    for src in [
        "let val xs = [] in xs end",
        "fun weird x = [] ; weird 1",
        "(fn x => x) (fn y => y) 3",
    ] {
        let p = typed(src);
        let mut ok = true;
        fn scan(t: &Type, ok: &mut bool) {
            match t {
                Type::Var(_) => *ok = false,
                Type::Tuple(ts) | Type::Data(_, ts) => ts.iter().for_each(|t| scan(t, ok)),
                Type::Arrow(a, b) => {
                    scan(a, ok);
                    scan(b, ok);
                }
                _ => {}
            }
        }
        scan(&p.main.ty, &mut ok);
        assert!(ok, "{src}: leftover unification variable in {}", p.main.ty);
    }
}

#[test]
fn eta_expanded_ctor_in_main() {
    let p = typed(
        "datatype wrap = W of int * bool ;
         fun map f xs = case xs of [] => [] | x :: r => f x :: map f r ;
         map W [(1, true)]",
    );
    match &p.main.kind {
        TExprKind::App { .. } => {}
        other => panic!("expected application, got {other:?}"),
    }
}
