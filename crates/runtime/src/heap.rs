//! Semispace copying heap.
//!
//! Two spaces with disjoint absolute address ranges: space A starts at
//! `HEAP_BASE`, space B at `SPACE_B_BASE = HEAP_BASE + 2^40`. Each space
//! has its own backing store, so one space can grow (see
//! [`Heap::reserve_to_space`]) without moving the other — growth never
//! relocates live objects, only a subsequent collection does. The mutator
//! bump-allocates in from-space; a collector copies live objects into
//! to-space and calls [`Heap::flip`].
//!
//! **Forwarding without tags.** A copying collector must detect
//! already-copied objects. Tag-free objects have no header word to spare,
//! so the heap keeps a GC-time side bitmap over from-space: marking an
//! object forwarded sets its bit and overwrites its first word with the
//! new address. The bitmap is collector-private transient state (1 bit
//! per from-space word, cleared at flip), not per-object mutator-visible
//! space, so the paper's "no heap-space overhead" claim is preserved; its
//! size is reported in [`HeapStats`]. The tagged collector uses the same
//! mechanism for uniformity (a real tagged runtime would smuggle the
//! forwarding pointer into the header).

use crate::stats::{HeapStats, OccupancySample};
use crate::word::{Addr, Word, HEAP_BASE};

/// Absolute base address of space B. Spaces are bounded by
/// [`MAX_SPACE_WORDS`], so the two address ranges can never meet.
pub const SPACE_B_BASE: u64 = HEAP_BASE + (1 << 40);

/// Hard upper bound on the size of one semispace, in words (8 TiB).
pub const MAX_SPACE_WORDS: usize = 1 << 40;

/// A semispace copying heap over raw words.
#[derive(Debug, Clone)]
pub struct Heap {
    space_a: Vec<Word>,
    space_b: Vec<Word>,
    /// True when space A (low addresses) is the current from-space.
    a_is_from: bool,
    /// Bump pointer within from-space (offset).
    from_alloc: usize,
    /// Bump pointer within to-space (offset), valid during collection.
    to_alloc: usize,
    /// Forwarding bitmap over from-space words (collection-time only).
    forwarded: Vec<u64>,
    pub stats: HeapStats,
}

impl Heap {
    /// Creates a heap with `cap` words per semispace.
    pub fn new(cap: usize) -> Heap {
        assert!(
            cap <= MAX_SPACE_WORDS,
            "semispace larger than {MAX_SPACE_WORDS} words"
        );
        Heap {
            space_a: vec![0; cap],
            space_b: vec![0; cap],
            a_is_from: true,
            from_alloc: 0,
            to_alloc: 0,
            forwarded: vec![0; cap.div_ceil(64)],
            stats: HeapStats::default(),
        }
    }

    fn space_from(&self) -> &Vec<Word> {
        if self.a_is_from {
            &self.space_a
        } else {
            &self.space_b
        }
    }

    fn space_to(&self) -> &Vec<Word> {
        if self.a_is_from {
            &self.space_b
        } else {
            &self.space_a
        }
    }

    /// Words in the current from-space (the mutator's view of capacity).
    pub fn capacity(&self) -> usize {
        self.space_from().len()
    }

    /// Words in the current to-space (differs from [`Heap::capacity`]
    /// only between a growth reservation and the next flip).
    pub fn to_space_capacity(&self) -> usize {
        self.space_to().len()
    }

    /// Words currently allocated in from-space.
    pub fn used(&self) -> usize {
        self.from_alloc
    }

    /// Words still available without a collection.
    pub fn available(&self) -> usize {
        self.capacity() - self.from_alloc
    }

    /// An instantaneous occupancy reading (serve-mode timeline samples):
    /// current from-space usage and capacity plus the live words left by
    /// the most recent collection. Deterministic — derived purely from
    /// allocator state, never the wall clock.
    pub fn occupancy(&self) -> OccupancySample {
        OccupancySample {
            heap_words: self.from_alloc as u64,
            capacity_words: self.capacity() as u64,
            live_words: self.stats.live_words_after_last_gc,
        }
    }

    // "from" is the semispace, not a conversion.
    #[allow(clippy::wrong_self_convention)]
    fn from_base(&self) -> u64 {
        if self.a_is_from {
            HEAP_BASE
        } else {
            SPACE_B_BASE
        }
    }

    fn to_base(&self) -> u64 {
        if self.a_is_from {
            SPACE_B_BASE
        } else {
            HEAP_BASE
        }
    }

    /// The absolute span `[base, base + used)` of live from-space data.
    /// Every valid tag-free pointer falls inside this span; the heap
    /// verifier checks object extents against it.
    pub fn live_span(&self) -> (u64, u64) {
        let b = self.from_base();
        (b, b + self.from_alloc as u64)
    }

    /// Is the address inside the current from-space?
    pub fn in_from(&self, a: Addr) -> bool {
        let b = self.from_base();
        a.0 >= b && a.0 < b + self.space_from().len() as u64
    }

    /// Is the address inside the current to-space?
    pub fn in_to(&self, a: Addr) -> bool {
        let b = self.to_base();
        a.0 >= b && a.0 < b + self.space_to().len() as u64
    }

    fn index(a: Addr) -> (bool, usize) {
        debug_assert!(a.0 >= HEAP_BASE, "address {a:?} below heap base");
        if a.0 >= SPACE_B_BASE {
            (false, (a.0 - SPACE_B_BASE) as usize)
        } else {
            (true, (a.0 - HEAP_BASE) as usize)
        }
    }

    /// Allocates `n` words in from-space. Returns `None` when a collection
    /// is needed first.
    pub fn alloc(&mut self, n: usize) -> Option<Addr> {
        if self.from_alloc + n > self.capacity() {
            return None;
        }
        let a = Addr(self.from_base() + self.from_alloc as u64);
        self.from_alloc += n;
        self.stats.allocations += 1;
        self.stats.words_allocated += n as u64;
        Some(a)
    }

    /// Reads the word at `a + off`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the heap.
    pub fn read(&self, a: Addr, off: u16) -> Word {
        let (in_a, i) = Self::index(a.offset(off));
        if in_a {
            self.space_a[i]
        } else {
            self.space_b[i]
        }
    }

    /// Writes the word at `a + off`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the heap.
    pub fn write(&mut self, a: Addr, off: u16, w: Word) {
        let (in_a, i) = Self::index(a.offset(off));
        if in_a {
            self.space_a[i] = w;
        } else {
            self.space_b[i] = w;
        }
    }

    // ---- collection support -------------------------------------------

    /// Copies `n` words of the object at `src` (in from-space) to
    /// to-space, returning the new address. Does not set forwarding.
    ///
    /// # Panics
    ///
    /// Panics if to-space overflows (cannot happen: live ≤ allocated and
    /// to-space is never smaller than from-space at collection time).
    pub fn copy_out(&mut self, src: Addr, n: usize) -> Addr {
        debug_assert!(self.in_from(src), "copy_out source not in from-space");
        assert!(
            self.to_alloc + n <= self.space_to().len(),
            "to-space overflow"
        );
        let (_, si) = Self::index(src);
        let di = self.to_alloc;
        let (from, to) = if self.a_is_from {
            (&self.space_a, &mut self.space_b)
        } else {
            (&self.space_b, &mut self.space_a)
        };
        to[di..di + n].copy_from_slice(&from[si..si + n]);
        let dst = Addr(self.to_base() + self.to_alloc as u64);
        self.to_alloc += n;
        self.stats.objects_copied += 1;
        self.stats.words_copied += n as u64;
        dst
    }

    /// Marks the from-space object at `src` as forwarded to `dst`.
    pub fn set_forward(&mut self, src: Addr, dst: Addr) {
        debug_assert!(self.in_from(src));
        let off = (src.0 - self.from_base()) as usize;
        self.forwarded[off / 64] |= 1 << (off % 64);
        self.write(src, 0, dst.0);
    }

    /// The forwarding address of `src`, if it was already copied this
    /// collection.
    pub fn forward_of(&self, src: Addr) -> Option<Addr> {
        debug_assert!(self.in_from(src));
        let off = (src.0 - self.from_base()) as usize;
        if self.forwarded[off / 64] & (1 << (off % 64)) != 0 {
            Some(Addr(self.read(src, 0)))
        } else {
            None
        }
    }

    /// Grows to-space to at least `words` (capped at [`MAX_SPACE_WORDS`]).
    /// Returns `true` if the space grew. Absolute addresses are stable
    /// across growth — each space has a fixed base — so live pointers
    /// need no relocation; the next collection simply copies into the
    /// larger space. Call outside a collection (`to_alloc == 0`), then
    /// collect, then call again to grow the other space.
    pub fn reserve_to_space(&mut self, words: usize) -> bool {
        let words = words.min(MAX_SPACE_WORDS);
        let cur = self.space_to().len();
        if words <= cur {
            return false;
        }
        if self.a_is_from {
            self.space_b.resize(words, 0);
        } else {
            self.space_a.resize(words, 0);
        }
        true
    }

    /// Finishes a collection: to-space becomes from-space, the bitmap is
    /// cleared (and resized to cover the new from-space), statistics are
    /// updated.
    pub fn flip(&mut self) {
        self.a_is_from = !self.a_is_from;
        self.from_alloc = self.to_alloc;
        self.to_alloc = 0;
        let bitmap_words = self.space_from().len().div_ceil(64);
        self.forwarded.clear();
        self.forwarded.resize(bitmap_words, 0);
        self.stats.collections += 1;
        self.stats.live_words_after_last_gc = self.from_alloc as u64;
        self.stats.peak_live_words = self.stats.peak_live_words.max(self.from_alloc as u64);
    }

    /// Transient collector-side memory (the forwarding bitmap), in bytes.
    pub fn collector_side_bytes(&self) -> usize {
        self.forwarded.len() * 8
    }

    /// Resets the heap to empty (used between benchmark iterations).
    pub fn reset(&mut self) {
        self.from_alloc = 0;
        self.to_alloc = 0;
        self.forwarded.iter_mut().for_each(|w| *w = 0);
        self.stats = HeapStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_reports_exhaustion() {
        let mut h = Heap::new(8);
        let a = h.alloc(4).unwrap();
        assert_eq!(a, Addr(HEAP_BASE));
        let b = h.alloc(4).unwrap();
        assert_eq!(b, Addr(HEAP_BASE + 4));
        assert!(h.alloc(1).is_none());
        assert_eq!(h.stats.allocations, 2);
        assert_eq!(h.stats.words_allocated, 8);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut h = Heap::new(16);
        let a = h.alloc(3).unwrap();
        h.write(a, 0, 10);
        h.write(a, 2, 30);
        assert_eq!(h.read(a, 0), 10);
        assert_eq!(h.read(a, 2), 30);
    }

    #[test]
    fn copy_and_forward() {
        let mut h = Heap::new(16);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 7);
        h.write(a, 1, 8);
        assert!(h.forward_of(a).is_none());
        let na = h.copy_out(a, 2);
        assert!(h.in_to(na));
        h.set_forward(a, na);
        assert_eq!(h.forward_of(a), Some(na));
        assert_eq!(h.read(na, 0), 7);
        assert_eq!(h.read(na, 1), 8);
    }

    #[test]
    fn flip_swaps_spaces() {
        let mut h = Heap::new(16);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 42);
        let na = h.copy_out(a, 2);
        h.set_forward(a, na);
        h.flip();
        assert!(h.in_from(na));
        assert!(!h.in_from(a));
        assert_eq!(h.read(na, 0), 42);
        assert_eq!(h.used(), 2);
        assert_eq!(h.stats.collections, 1);
        // New allocations land after the survivors.
        let b = h.alloc(1).unwrap();
        assert!(h.in_from(b));
        assert_ne!(b, na);
    }

    #[test]
    fn forwarding_bitmap_clears_on_flip() {
        let mut h = Heap::new(16);
        let a = h.alloc(1).unwrap();
        let na = h.copy_out(a, 1);
        h.set_forward(a, na);
        h.flip();
        // `na` occupies the same offset class; it must not read as
        // forwarded in the new from-space.
        assert!(h.forward_of(na).is_none());
    }

    #[test]
    fn two_collections_round_trip_data() {
        let mut h = Heap::new(8);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 1);
        h.write(a, 1, 2);
        let n1 = h.copy_out(a, 2);
        h.set_forward(a, n1);
        h.flip();
        let n2 = h.copy_out(n1, 2);
        h.set_forward(n1, n2);
        h.flip();
        assert_eq!(h.read(n2, 0), 1);
        assert_eq!(h.read(n2, 1), 2);
        assert_eq!(h.stats.collections, 2);
    }

    #[test]
    fn spaces_have_disjoint_fixed_bases() {
        let mut h = Heap::new(8);
        let a = h.alloc(8).unwrap();
        assert_eq!(a, Addr(HEAP_BASE));
        let na = h.copy_out(a, 8);
        assert_eq!(na, Addr(SPACE_B_BASE));
        h.set_forward(a, na);
        h.flip();
        // After the flip new allocations come from space B's range.
        let b = h.alloc(0).unwrap();
        assert!(b.0 >= SPACE_B_BASE);
    }

    #[test]
    fn growth_preserves_addresses_across_collection() {
        let mut h = Heap::new(4);
        let a = h.alloc(4).unwrap();
        h.write(a, 0, 11);
        h.write(a, 3, 44);
        assert!(h.alloc(1).is_none());
        // Grow to-space, "collect" the one live object, flip, then grow
        // the other space: capacity doubles and data survives in place.
        assert!(h.reserve_to_space(8));
        let na = h.copy_out(a, 4);
        h.set_forward(a, na);
        h.flip();
        assert!(h.reserve_to_space(8));
        assert_eq!(h.capacity(), 8);
        assert_eq!(h.to_space_capacity(), 8);
        assert_eq!(h.read(na, 0), 11);
        assert_eq!(h.read(na, 3), 44);
        let b = h.alloc(4).unwrap();
        assert!(h.in_from(b));
        // Shrinking is a no-op.
        assert!(!h.reserve_to_space(2));
    }

    #[test]
    fn forwarding_bitmap_resizes_with_growth() {
        let mut h = Heap::new(64);
        let a = h.alloc(64).unwrap();
        h.reserve_to_space(256);
        let na = h.copy_out(a, 64);
        h.set_forward(a, na);
        h.flip();
        // Bitmap now covers the 256-word from-space.
        assert_eq!(h.collector_side_bytes(), 256usize.div_ceil(64) * 8);
        let b = h.alloc(150).unwrap();
        let _ = b;
        assert!(h.forward_of(Addr(h.live_span().0 + 199)).is_none());
    }
}
