//! Semispace copying heap.
//!
//! Two equal spaces with disjoint absolute address ranges (space A at
//! `[HEAP_BASE, HEAP_BASE + cap)`, space B at `[HEAP_BASE + cap,
//! HEAP_BASE + 2·cap)`). The mutator bump-allocates in from-space; a
//! collector copies live objects into to-space and calls [`Heap::flip`].
//!
//! **Forwarding without tags.** A copying collector must detect
//! already-copied objects. Tag-free objects have no header word to spare,
//! so the heap keeps a GC-time side bitmap over from-space: marking an
//! object forwarded sets its bit and overwrites its first word with the
//! new address. The bitmap is collector-private transient state (1 bit
//! per from-space word, cleared at flip), not per-object mutator-visible
//! space, so the paper's "no heap-space overhead" claim is preserved; its
//! size is reported in [`HeapStats`]. The tagged collector uses the same
//! mechanism for uniformity (a real tagged runtime would smuggle the
//! forwarding pointer into the header).

use crate::stats::HeapStats;
use crate::word::{Addr, Word, HEAP_BASE};

/// A semispace copying heap over raw words.
#[derive(Debug, Clone)]
pub struct Heap {
    words: Vec<Word>,
    cap: usize,
    /// True when space A (low addresses) is the current from-space.
    a_is_from: bool,
    /// Bump pointer within from-space (offset).
    from_alloc: usize,
    /// Bump pointer within to-space (offset), valid during collection.
    to_alloc: usize,
    /// Forwarding bitmap over from-space words (collection-time only).
    forwarded: Vec<u64>,
    pub stats: HeapStats,
}

impl Heap {
    /// Creates a heap with `cap` words per semispace.
    pub fn new(cap: usize) -> Heap {
        Heap {
            words: vec![0; cap * 2],
            cap,
            a_is_from: true,
            from_alloc: 0,
            to_alloc: 0,
            forwarded: vec![0; cap.div_ceil(64)],
            stats: HeapStats::default(),
        }
    }

    /// Words per semispace.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Words currently allocated in from-space.
    pub fn used(&self) -> usize {
        self.from_alloc
    }

    /// Words still available without a collection.
    pub fn available(&self) -> usize {
        self.cap - self.from_alloc
    }

    // "from" is the semispace, not a conversion.
    #[allow(clippy::wrong_self_convention)]
    fn from_base(&self) -> u64 {
        if self.a_is_from {
            HEAP_BASE
        } else {
            HEAP_BASE + self.cap as u64
        }
    }

    fn to_base(&self) -> u64 {
        if self.a_is_from {
            HEAP_BASE + self.cap as u64
        } else {
            HEAP_BASE
        }
    }

    fn index(&self, a: Addr) -> usize {
        debug_assert!(a.0 >= HEAP_BASE, "address {a:?} below heap base");
        (a.0 - HEAP_BASE) as usize
    }

    /// Is the address inside the current from-space?
    pub fn in_from(&self, a: Addr) -> bool {
        let b = self.from_base();
        a.0 >= b && a.0 < b + self.cap as u64
    }

    /// Is the address inside the current to-space?
    pub fn in_to(&self, a: Addr) -> bool {
        let b = self.to_base();
        a.0 >= b && a.0 < b + self.cap as u64
    }

    /// Allocates `n` words in from-space. Returns `None` when a collection
    /// is needed first.
    pub fn alloc(&mut self, n: usize) -> Option<Addr> {
        if self.from_alloc + n > self.cap {
            return None;
        }
        let a = Addr(self.from_base() + self.from_alloc as u64);
        self.from_alloc += n;
        self.stats.allocations += 1;
        self.stats.words_allocated += n as u64;
        Some(a)
    }

    /// Reads the word at `a + off`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the heap.
    pub fn read(&self, a: Addr, off: u16) -> Word {
        self.words[self.index(a.offset(off))]
    }

    /// Writes the word at `a + off`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the heap.
    pub fn write(&mut self, a: Addr, off: u16, w: Word) {
        let i = self.index(a.offset(off));
        self.words[i] = w;
    }

    // ---- collection support -------------------------------------------

    /// Copies `n` words of the object at `src` (in from-space) to
    /// to-space, returning the new address. Does not set forwarding.
    ///
    /// # Panics
    ///
    /// Panics if to-space overflows (cannot happen: live ≤ allocated).
    pub fn copy_out(&mut self, src: Addr, n: usize) -> Addr {
        debug_assert!(self.in_from(src), "copy_out source not in from-space");
        assert!(self.to_alloc + n <= self.cap, "to-space overflow");
        let si = self.index(src);
        let di = (self.to_base() - HEAP_BASE) as usize + self.to_alloc;
        for k in 0..n {
            self.words[di + k] = self.words[si + k];
        }
        let dst = Addr(self.to_base() + self.to_alloc as u64);
        self.to_alloc += n;
        self.stats.objects_copied += 1;
        self.stats.words_copied += n as u64;
        dst
    }

    /// Marks the from-space object at `src` as forwarded to `dst`.
    pub fn set_forward(&mut self, src: Addr, dst: Addr) {
        debug_assert!(self.in_from(src));
        let off = (src.0 - self.from_base()) as usize;
        self.forwarded[off / 64] |= 1 << (off % 64);
        let i = self.index(src);
        self.words[i] = dst.0;
    }

    /// The forwarding address of `src`, if it was already copied this
    /// collection.
    pub fn forward_of(&self, src: Addr) -> Option<Addr> {
        debug_assert!(self.in_from(src));
        let off = (src.0 - self.from_base()) as usize;
        if self.forwarded[off / 64] & (1 << (off % 64)) != 0 {
            Some(Addr(self.words[self.index(src)]))
        } else {
            None
        }
    }

    /// Finishes a collection: to-space becomes from-space, the bitmap is
    /// cleared, statistics are updated.
    pub fn flip(&mut self) {
        self.a_is_from = !self.a_is_from;
        self.from_alloc = self.to_alloc;
        self.to_alloc = 0;
        self.forwarded.iter_mut().for_each(|w| *w = 0);
        self.stats.collections += 1;
        self.stats.live_words_after_last_gc = self.from_alloc as u64;
        self.stats.peak_live_words = self.stats.peak_live_words.max(self.from_alloc as u64);
    }

    /// Transient collector-side memory (the forwarding bitmap), in bytes.
    pub fn collector_side_bytes(&self) -> usize {
        self.forwarded.len() * 8
    }

    /// Resets the heap to empty (used between benchmark iterations).
    pub fn reset(&mut self) {
        self.from_alloc = 0;
        self.to_alloc = 0;
        self.forwarded.iter_mut().for_each(|w| *w = 0);
        self.stats = HeapStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_reports_exhaustion() {
        let mut h = Heap::new(8);
        let a = h.alloc(4).unwrap();
        assert_eq!(a, Addr(HEAP_BASE));
        let b = h.alloc(4).unwrap();
        assert_eq!(b, Addr(HEAP_BASE + 4));
        assert!(h.alloc(1).is_none());
        assert_eq!(h.stats.allocations, 2);
        assert_eq!(h.stats.words_allocated, 8);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut h = Heap::new(16);
        let a = h.alloc(3).unwrap();
        h.write(a, 0, 10);
        h.write(a, 2, 30);
        assert_eq!(h.read(a, 0), 10);
        assert_eq!(h.read(a, 2), 30);
    }

    #[test]
    fn copy_and_forward() {
        let mut h = Heap::new(16);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 7);
        h.write(a, 1, 8);
        assert!(h.forward_of(a).is_none());
        let na = h.copy_out(a, 2);
        assert!(h.in_to(na));
        h.set_forward(a, na);
        assert_eq!(h.forward_of(a), Some(na));
        assert_eq!(h.read(na, 0), 7);
        assert_eq!(h.read(na, 1), 8);
    }

    #[test]
    fn flip_swaps_spaces() {
        let mut h = Heap::new(16);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 42);
        let na = h.copy_out(a, 2);
        h.set_forward(a, na);
        h.flip();
        assert!(h.in_from(na));
        assert!(!h.in_from(a));
        assert_eq!(h.read(na, 0), 42);
        assert_eq!(h.used(), 2);
        assert_eq!(h.stats.collections, 1);
        // New allocations land after the survivors.
        let b = h.alloc(1).unwrap();
        assert!(h.in_from(b));
        assert_ne!(b, na);
    }

    #[test]
    fn forwarding_bitmap_clears_on_flip() {
        let mut h = Heap::new(16);
        let a = h.alloc(1).unwrap();
        let na = h.copy_out(a, 1);
        h.set_forward(a, na);
        h.flip();
        // `na` occupies the same offset class; it must not read as
        // forwarded in the new from-space.
        assert!(h.forward_of(na).is_none());
    }

    #[test]
    fn two_collections_round_trip_data() {
        let mut h = Heap::new(8);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 1);
        h.write(a, 1, 2);
        let n1 = h.copy_out(a, 2);
        h.set_forward(a, n1);
        h.flip();
        let n2 = h.copy_out(n1, 2);
        h.set_forward(n1, n2);
        h.flip();
        assert_eq!(h.read(n2, 0), 1);
        assert_eq!(h.read(n2, 1), 2);
        assert_eq!(h.stats.collections, 2);
    }
}
