//! Semispace copying heap with an optional generational nursery tier.
//!
//! Two tenured spaces with disjoint absolute address ranges: space A
//! starts at `HEAP_BASE`, space B at `SPACE_B_BASE = HEAP_BASE + 2^40`.
//! Each space has its own backing store, so one space can grow (see
//! [`Heap::reserve_to_space`]) without moving the other — growth never
//! relocates live objects, only a subsequent collection does. The mutator
//! bump-allocates in from-space; a collector copies live objects into
//! to-space and calls [`Heap::flip`].
//!
//! **Forwarding without tags.** A copying collector must detect
//! already-copied objects. Tag-free objects have no header word to spare,
//! so the heap keeps a GC-time side bitmap over from-space: marking an
//! object forwarded sets its bit and overwrites its first word with the
//! new address. The bitmap is collector-private transient state (1 bit
//! per from-space word, cleared at flip), not per-object mutator-visible
//! space, so the paper's "no heap-space overhead" claim is preserved; its
//! size is reported in [`HeapStats`]. The tagged collector uses the same
//! mechanism for uniformity (a real tagged runtime would smuggle the
//! forwarding pointer into the header).
//!
//! **Generational tier.** [`Heap::new_generational`] fronts the two
//! tenured spaces with a bump-pointer *nursery* at its own disjoint base,
//! `NURSERY_BASE = HEAP_BASE + 2^41` (an eden plus two survivor halves).
//! All mutator allocation lands in eden; nursery exhaustion triggers a
//! **minor** collection — the collector traces the same roots it always
//! does, but relocation is phase-dispatched here: tenured objects count
//! as already relocated ([`Heap::in_to`] is true for them), and nursery
//! survivors are copied to the idle survivor half or **promoted** into
//! tenured from-space once their age exceeds `promote_after`. Because
//! the surface language is immutable, no tenured object can ever point
//! into the nursery, so minors need *no write barrier and no remembered
//! set* — the zero-per-object-overhead claim survives intact. **Major**
//! collections remain the semispace flip, with the nursery as an extra
//! source region so a major empties it. The phase is bracketed by
//! [`Heap::begin_collection`] / [`Heap::finish_collection`]; both
//! collectors run minors and majors through the same relocation code.

use crate::stats::{HeapStats, OccupancySample};
use crate::word::{Addr, Word, HEAP_BASE};

/// Absolute base address of space B. Spaces are bounded by
/// [`MAX_SPACE_WORDS`], so the two address ranges can never meet.
pub const SPACE_B_BASE: u64 = HEAP_BASE + (1 << 40);

/// Absolute base address of the nursery (generational mode only). Space
/// B's maximal extent ends exactly here, so the three ranges are
/// disjoint and a single comparison classifies any heap word's region.
pub const NURSERY_BASE: u64 = HEAP_BASE + (2 << 40);

/// Hard upper bound on the size of one semispace, in words (8 TiB).
pub const MAX_SPACE_WORDS: usize = 1 << 40;

/// Which collection (if any) the heap is relocating for. Phase-dispatch
/// lets [`Heap::in_to`] / [`Heap::copy_out`] serve minor and major
/// cycles through identical collector code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Mutator running (or a legacy un-bracketed major, which behaves
    /// identically to `Major`).
    Idle,
    /// Minor: sources = nursery, destinations = survivor-to + tenured
    /// from-space.
    Minor,
    /// Major: sources = tenured from-space ∪ nursery, destination =
    /// to-space.
    Major,
}

/// A semispace copying heap over raw words, optionally fronted by a
/// bump-pointer nursery.
#[derive(Debug, Clone)]
pub struct Heap {
    space_a: Vec<Word>,
    space_b: Vec<Word>,
    /// True when space A (low addresses) is the current from-space.
    a_is_from: bool,
    /// Bump pointer within from-space (offset).
    from_alloc: usize,
    /// Bump pointer within to-space (offset), valid during collection.
    to_alloc: usize,
    /// Forwarding bitmap over from-space words (collection-time only).
    forwarded: Vec<u64>,
    /// Nursery backing store (empty in single-generation mode): eden at
    /// `[0, eden_cap)`, survivor half A at `[eden_cap, eden_cap + sur)`,
    /// survivor half B at `[eden_cap + sur, eden_cap + 2*sur)`.
    nursery: Vec<Word>,
    eden_cap: usize,
    survivor_cap: usize,
    /// Bump pointer within eden.
    eden_alloc: usize,
    /// True when survivor half A is the occupied (from) half.
    sur_a_is_from: bool,
    /// Bump pointer within the occupied survivor half.
    sur_from_alloc: usize,
    /// Bump pointer within the idle survivor half (minor-time only).
    sur_to_alloc: usize,
    /// Minor-survival counts at nursery head offsets (side table, like
    /// the forwarding bitmap: collector-private, no per-object space).
    ages: Vec<u8>,
    /// Forwarding bitmap over nursery words (collection-time only).
    nursery_forwarded: Vec<u64>,
    /// Survive this many minors in the survivor space before promoting.
    /// 0 ⇒ promote on first survival (no survivor halves at all).
    promote_after: u32,
    phase: Phase,
    /// Nursery words occupied when the current minor began.
    minor_begin_used: usize,
    /// Words promoted to tenured by the current minor.
    minor_promoted: usize,
    /// The current/last minor had to tenure a young object because the
    /// survivor half overflowed. Such a promotion is not monotone in
    /// age, so it can manufacture a tenured→nursery edge; the caller
    /// must follow up with a major in the same pause.
    minor_sur_overflow: bool,
    last_promoted_words: u64,
    last_died_young_words: u64,
    pub stats: HeapStats,
}

impl Heap {
    /// Creates a single-generation heap with `cap` words per semispace.
    pub fn new(cap: usize) -> Heap {
        assert!(
            cap <= MAX_SPACE_WORDS,
            "semispace larger than {MAX_SPACE_WORDS} words"
        );
        Heap {
            space_a: vec![0; cap],
            space_b: vec![0; cap],
            a_is_from: true,
            from_alloc: 0,
            to_alloc: 0,
            forwarded: vec![0; cap.div_ceil(64)],
            nursery: Vec::new(),
            eden_cap: 0,
            survivor_cap: 0,
            eden_alloc: 0,
            sur_a_is_from: true,
            sur_from_alloc: 0,
            sur_to_alloc: 0,
            ages: Vec::new(),
            nursery_forwarded: Vec::new(),
            promote_after: 0,
            phase: Phase::Idle,
            minor_begin_used: 0,
            minor_promoted: 0,
            minor_sur_overflow: false,
            last_promoted_words: 0,
            last_died_young_words: 0,
            stats: HeapStats::default(),
        }
    }

    /// Creates a generational heap: `cap` tenured words per semispace
    /// plus a nursery of `nursery_words`. With `promote_after == 0` the
    /// whole nursery is eden and every minor survivor promotes
    /// immediately; otherwise a quarter of the nursery is carved into
    /// two survivor halves and objects promote after surviving
    /// `promote_after` minors there.
    pub fn new_generational(cap: usize, nursery_words: usize, promote_after: u32) -> Heap {
        assert!(nursery_words > 0, "nursery must be non-empty");
        assert!(
            nursery_words <= MAX_SPACE_WORDS,
            "nursery larger than {MAX_SPACE_WORDS} words"
        );
        let mut h = Heap::new(cap);
        let survivor_cap = if promote_after == 0 {
            0
        } else {
            nursery_words / 4
        };
        let total = nursery_words
            .saturating_sub(2 * survivor_cap)
            .max(1)
            .saturating_add(2 * survivor_cap);
        h.eden_cap = total - 2 * survivor_cap;
        h.survivor_cap = survivor_cap;
        h.nursery = vec![0; total];
        h.ages = vec![0; total];
        h.nursery_forwarded = vec![0; total.div_ceil(64)];
        h.promote_after = promote_after;
        h
    }

    /// Is this heap running a generational nursery?
    pub fn generational(&self) -> bool {
        !self.nursery.is_empty()
    }

    /// Eden capacity in words (0 in single-generation mode).
    pub fn eden_capacity(&self) -> usize {
        self.eden_cap
    }

    /// Capacity of one survivor half in words.
    pub fn survivor_capacity(&self) -> usize {
        self.survivor_cap
    }

    /// The configured promotion threshold.
    pub fn promote_after(&self) -> u32 {
        self.promote_after
    }

    /// Did the last minor tenure a young object because the survivor
    /// half overflowed? Such promotions can leave tenured→nursery edges
    /// behind; the collection driver must run a major in the same pause
    /// to restore the barrier-free invariant before the mutator resumes.
    pub fn minor_survivor_overflowed(&self) -> bool {
        self.minor_sur_overflow
    }

    /// Live nursery words: eden bump plus the occupied survivor half.
    pub fn nursery_used(&self) -> usize {
        self.eden_alloc + self.sur_from_alloc
    }

    /// Nursery words visible to the mutator (eden plus one survivor
    /// half; the other half is copy reserve).
    pub fn nursery_capacity(&self) -> usize {
        self.eden_cap + self.survivor_cap
    }

    fn space_from(&self) -> &Vec<Word> {
        if self.a_is_from {
            &self.space_a
        } else {
            &self.space_b
        }
    }

    fn space_to(&self) -> &Vec<Word> {
        if self.a_is_from {
            &self.space_b
        } else {
            &self.space_a
        }
    }

    /// Words in the current from-space (the mutator's view of capacity).
    pub fn capacity(&self) -> usize {
        self.space_from().len()
    }

    /// Words in the current to-space (differs from [`Heap::capacity`]
    /// only between a growth reservation and the next flip).
    pub fn to_space_capacity(&self) -> usize {
        self.space_to().len()
    }

    /// Words currently allocated in from-space.
    pub fn used(&self) -> usize {
        self.from_alloc
    }

    /// Words still available without a collection.
    pub fn available(&self) -> usize {
        self.capacity() - self.from_alloc
    }

    /// An instantaneous occupancy reading (serve-mode timeline samples):
    /// current from-space usage and capacity plus the live words left by
    /// the most recent collection, and the nursery's own bump/capacity
    /// in generational mode. Deterministic — derived purely from
    /// allocator state, never the wall clock.
    pub fn occupancy(&self) -> OccupancySample {
        OccupancySample {
            heap_words: self.from_alloc as u64,
            capacity_words: self.capacity() as u64,
            live_words: self.stats.live_words_after_last_gc,
            nursery_words: self.nursery_used() as u64,
            nursery_capacity_words: self.nursery_capacity() as u64,
        }
    }

    // "from" is the semispace, not a conversion.
    #[allow(clippy::wrong_self_convention)]
    fn from_base(&self) -> u64 {
        if self.a_is_from {
            HEAP_BASE
        } else {
            SPACE_B_BASE
        }
    }

    fn to_base(&self) -> u64 {
        if self.a_is_from {
            SPACE_B_BASE
        } else {
            HEAP_BASE
        }
    }

    /// The absolute span `[base, base + used)` of live from-space data.
    /// Every valid tag-free pointer falls inside this span; the heap
    /// verifier checks object extents against it.
    pub fn live_span(&self) -> (u64, u64) {
        let b = self.from_base();
        (b, b + self.from_alloc as u64)
    }

    /// The live span of the allocated region containing `a`, or `None`
    /// if `a` points at no allocated region: tenured from-space, the
    /// eden prefix, or the occupied survivor half — exactly the regions
    /// the mutator may legally hold pointers into between collections.
    pub fn span_of(&self, a: Addr) -> Option<(u64, u64)> {
        if a.0 >= NURSERY_BASE {
            let off = (a.0 - NURSERY_BASE) as usize;
            if off < self.eden_alloc {
                return Some((NURSERY_BASE, NURSERY_BASE + self.eden_alloc as u64));
            }
            let sf = self.sur_from_off();
            if off >= sf && off < sf + self.sur_from_alloc {
                return Some((
                    NURSERY_BASE + sf as u64,
                    NURSERY_BASE + (sf + self.sur_from_alloc) as u64,
                ));
            }
            return None;
        }
        let (lo, hi) = self.live_span();
        if a.0 >= lo && a.0 < hi {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Offset of the occupied (from) survivor half within the nursery.
    fn sur_from_off(&self) -> usize {
        if self.sur_a_is_from {
            self.eden_cap
        } else {
            self.eden_cap + self.survivor_cap
        }
    }

    /// Offset of the idle (to) survivor half within the nursery.
    fn sur_to_off(&self) -> usize {
        if self.sur_a_is_from {
            self.eden_cap + self.survivor_cap
        } else {
            self.eden_cap
        }
    }

    /// Is the address inside the current from-space?
    pub fn in_from(&self, a: Addr) -> bool {
        let b = self.from_base();
        a.0 >= b && a.0 < b + self.space_from().len() as u64
    }

    /// Is the address inside the nursery range?
    pub fn in_nursery(&self, a: Addr) -> bool {
        a.0 >= NURSERY_BASE
    }

    /// Is the address already relocated for the current collection?
    /// During a major (or outside any collection) this is "inside the
    /// current to-space". During a minor it is "tenured, or inside the
    /// survivor-to prefix" — a minor never moves tenured objects, so
    /// they count as relocated on sight.
    pub fn in_to(&self, a: Addr) -> bool {
        match self.phase {
            Phase::Minor => {
                if a.0 < NURSERY_BASE {
                    return true;
                }
                let off = (a.0 - NURSERY_BASE) as usize;
                let st = self.sur_to_off();
                off >= st && off < st + self.sur_to_alloc
            }
            _ => {
                let b = self.to_base();
                a.0 >= b && a.0 < b + self.space_to().len() as u64
            }
        }
    }

    /// Region (0 = space A, 1 = space B, 2 = nursery) and word index.
    fn index(a: Addr) -> (u8, usize) {
        debug_assert!(a.0 >= HEAP_BASE, "address {a:?} below heap base");
        if a.0 >= NURSERY_BASE {
            (2, (a.0 - NURSERY_BASE) as usize)
        } else if a.0 >= SPACE_B_BASE {
            (1, (a.0 - SPACE_B_BASE) as usize)
        } else {
            (0, (a.0 - HEAP_BASE) as usize)
        }
    }

    /// Allocates `n` words. Single-generation heaps bump in from-space;
    /// generational heaps bump in eden. An object too big for eden
    /// allocates directly in tenured from-space, but **only while the
    /// nursery is empty** — its fields were relocated to tenured by the
    /// forced major that emptied the nursery, so the no-tenured→nursery
    /// -edge invariant is preserved. Returns `None` when a collection
    /// (minor, major, or a forced major for an oversize object) is
    /// needed first.
    pub fn alloc(&mut self, n: usize) -> Option<Addr> {
        if self.generational() {
            if self.eden_alloc + n <= self.eden_cap {
                let a = Addr(NURSERY_BASE + self.eden_alloc as u64);
                self.eden_alloc += n;
                self.stats.allocations += 1;
                self.stats.words_allocated += n as u64;
                return Some(a);
            }
            if n > self.eden_cap
                && self.nursery_used() == 0
                && self.from_alloc + n <= self.capacity()
            {
                let a = Addr(self.from_base() + self.from_alloc as u64);
                self.from_alloc += n;
                self.stats.allocations += 1;
                self.stats.words_allocated += n as u64;
                return Some(a);
            }
            return None;
        }
        if self.from_alloc + n > self.capacity() {
            return None;
        }
        let a = Addr(self.from_base() + self.from_alloc as u64);
        self.from_alloc += n;
        self.stats.allocations += 1;
        self.stats.words_allocated += n as u64;
        Some(a)
    }

    /// Reads the word at `a + off`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the heap.
    pub fn read(&self, a: Addr, off: u16) -> Word {
        let (region, i) = Self::index(a.offset(off));
        match region {
            0 => self.space_a[i],
            1 => self.space_b[i],
            _ => self.nursery[i],
        }
    }

    /// Writes the word at `a + off`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the heap.
    pub fn write(&mut self, a: Addr, off: u16, w: Word) {
        let (region, i) = Self::index(a.offset(off));
        match region {
            0 => self.space_a[i] = w,
            1 => self.space_b[i] = w,
            _ => self.nursery[i] = w,
        }
    }

    // ---- collection support -------------------------------------------

    /// Brackets the start of a collection. `minor` runs a nursery-only
    /// cycle (generational heaps only; the caller must have ensured
    /// tenured from-space can absorb the whole nursery — the
    /// full-promotion worst case). `!minor` prepares a major: in
    /// generational mode the to-space reservation is widened to cover
    /// worst-case nursery evacuation on top of the tenured live set.
    ///
    /// Legacy single-generation callers may skip the bracket entirely
    /// and use `copy_out`/`set_forward`/`flip` directly — `Idle`
    /// behaves exactly like `Major`.
    pub fn begin_collection(&mut self, minor: bool) {
        assert_eq!(self.phase, Phase::Idle, "collection already in progress");
        if minor {
            debug_assert!(self.generational(), "minor collection without a nursery");
            debug_assert!(
                self.available() >= self.nursery_used(),
                "minor collection without full-promotion headroom"
            );
            self.phase = Phase::Minor;
            self.minor_begin_used = self.nursery_used();
            self.minor_promoted = 0;
            self.minor_sur_overflow = false;
        } else {
            self.phase = Phase::Major;
            if self.generational() {
                let need = self.from_alloc + self.nursery_used();
                if self.to_space_capacity() < need {
                    self.reserve_to_space(need);
                }
            }
        }
    }

    /// Copies `n` words of the object at `src` to its destination for
    /// the current phase, returning the new address. During a major,
    /// `src` is in from-space or the nursery and the destination is
    /// to-space. During a minor, `src` is in the nursery and the
    /// destination is the survivor-to half — or tenured from-space,
    /// when the object's age exceeds `promote_after`, the survivor half
    /// is absent (`promote_after == 0`), or it would overflow. Does not
    /// set forwarding.
    ///
    /// # Panics
    ///
    /// Panics if the destination overflows (cannot happen for majors:
    /// live ≤ allocated and to-space covers from-space plus the nursery
    /// at collection time; cannot happen for minors: the caller
    /// checked full-promotion headroom before starting one).
    pub fn copy_out(&mut self, src: Addr, n: usize) -> Addr {
        match self.phase {
            Phase::Minor => self.copy_out_minor(src, n),
            _ => self.copy_out_major(src, n),
        }
    }

    fn copy_out_major(&mut self, src: Addr, n: usize) -> Addr {
        assert!(
            self.to_alloc + n <= self.space_to().len(),
            "to-space overflow"
        );
        let (region, si) = Self::index(src);
        let di = self.to_alloc;
        match region {
            2 => {
                let to = if self.a_is_from {
                    &mut self.space_b
                } else {
                    &mut self.space_a
                };
                to[di..di + n].copy_from_slice(&self.nursery[si..si + n]);
            }
            _ => {
                debug_assert!(self.in_from(src), "copy_out source not in from-space");
                let (from, to) = if self.a_is_from {
                    (&self.space_a, &mut self.space_b)
                } else {
                    (&self.space_b, &mut self.space_a)
                };
                to[di..di + n].copy_from_slice(&from[si..si + n]);
            }
        }
        let dst = Addr(self.to_base() + self.to_alloc as u64);
        self.to_alloc += n;
        self.stats.objects_copied += 1;
        self.stats.words_copied += n as u64;
        dst
    }

    fn copy_out_minor(&mut self, src: Addr, n: usize) -> Addr {
        let (region, si) = Self::index(src);
        assert_eq!(region, 2, "minor collection asked to copy a tenured object");
        let age = self.ages[si].saturating_add(1);
        // Promotion by age is monotone: in an immutable heap a child is
        // always at least as old as its parent, so an age-promoted
        // parent's children age-promote too and no tenured→nursery edge
        // can form. Survivor-half overflow breaks that monotonicity (it
        // tenures a *young* object whose older children may already sit
        // in the survivor half), so it is flagged and the caller
        // escalates to a major within the same pause.
        let by_age = u32::from(age) > self.promote_after || self.survivor_cap == 0;
        let overflow = !by_age && self.sur_to_alloc + n > self.survivor_cap;
        if overflow {
            self.minor_sur_overflow = true;
        }
        let promote = by_age || overflow;
        self.stats.objects_copied += 1;
        self.stats.words_copied += n as u64;
        if promote {
            assert!(
                self.from_alloc + n <= self.capacity(),
                "tenured overflow during minor collection"
            );
            let di = self.from_alloc;
            let from = if self.a_is_from {
                &mut self.space_a
            } else {
                &mut self.space_b
            };
            from[di..di + n].copy_from_slice(&self.nursery[si..si + n]);
            self.from_alloc += n;
            self.minor_promoted += n;
            Addr(self.from_base() + di as u64)
        } else {
            let di = self.sur_to_off() + self.sur_to_alloc;
            self.nursery.copy_within(si..si + n, di);
            self.ages[di] = age;
            self.sur_to_alloc += n;
            Addr(NURSERY_BASE + di as u64)
        }
    }

    /// Marks the source object at `src` as forwarded to `dst`. Nursery
    /// sources use the nursery's own bitmap; tenured sources use the
    /// from-space bitmap.
    pub fn set_forward(&mut self, src: Addr, dst: Addr) {
        let (region, i) = Self::index(src);
        if region == 2 {
            self.nursery_forwarded[i / 64] |= 1 << (i % 64);
            self.nursery[i] = dst.0;
        } else {
            debug_assert!(self.in_from(src));
            self.forwarded[i / 64] |= 1 << (i % 64);
            self.write(src, 0, dst.0);
        }
    }

    /// The forwarding address of `src`, if it was already copied this
    /// collection.
    pub fn forward_of(&self, src: Addr) -> Option<Addr> {
        let (region, i) = Self::index(src);
        if region == 2 {
            if self.nursery_forwarded[i / 64] & (1 << (i % 64)) != 0 {
                return Some(Addr(self.nursery[i]));
            }
            return None;
        }
        debug_assert!(self.in_from(src));
        if self.forwarded[i / 64] & (1 << (i % 64)) != 0 {
            Some(Addr(self.read(src, 0)))
        } else {
            None
        }
    }

    /// Grows to-space to at least `words` (capped at [`MAX_SPACE_WORDS`]).
    /// Returns `true` if the space grew. Absolute addresses are stable
    /// across growth — each space has a fixed base — so live pointers
    /// need no relocation; the next collection simply copies into the
    /// larger space. Call outside a collection (`to_alloc == 0`), then
    /// collect, then call again to grow the other space.
    pub fn reserve_to_space(&mut self, words: usize) -> bool {
        let words = words.min(MAX_SPACE_WORDS);
        let cur = self.space_to().len();
        if words <= cur {
            return false;
        }
        if self.a_is_from {
            self.space_b.resize(words, 0);
        } else {
            self.space_a.resize(words, 0);
        }
        true
    }

    /// Brackets the end of a collection. A minor swaps the survivor
    /// halves, resets eden, clears the nursery's forwarding bitmap and
    /// dead ages, and records promoted/died-young words. A major (or a
    /// legacy un-bracketed flip) performs the semispace [`Heap::flip`]
    /// and, in generational mode, additionally resets the whole nursery
    /// (a major evacuates it into to-space).
    pub fn finish_collection(&mut self) {
        match self.phase {
            Phase::Minor => {
                let survived = self.sur_to_alloc + self.minor_promoted;
                self.last_promoted_words = self.minor_promoted as u64;
                self.last_died_young_words = self.minor_begin_used.saturating_sub(survived) as u64;
                self.nursery_forwarded.iter_mut().for_each(|w| *w = 0);
                // Ages only matter at live head offsets; clear the spans
                // that just died (eden prefix + old survivor-from half).
                self.ages[..self.eden_alloc].fill(0);
                let sf = self.sur_from_off();
                self.ages[sf..sf + self.sur_from_alloc].fill(0);
                self.eden_alloc = 0;
                self.sur_a_is_from = !self.sur_a_is_from;
                self.sur_from_alloc = self.sur_to_alloc;
                self.sur_to_alloc = 0;
                self.phase = Phase::Idle;
                self.stats.collections += 1;
                self.stats.live_words_after_last_gc =
                    (self.from_alloc + self.sur_from_alloc) as u64;
                self.stats.peak_live_words = self
                    .stats
                    .peak_live_words
                    .max(self.stats.live_words_after_last_gc);
            }
            _ => {
                self.last_promoted_words = 0;
                self.last_died_young_words = 0;
                self.minor_sur_overflow = false;
                self.phase = Phase::Idle;
                if self.generational() {
                    // A major evacuated the nursery into to-space; empty
                    // it before the flip computes live-word statistics.
                    self.eden_alloc = 0;
                    self.sur_from_alloc = 0;
                    self.sur_to_alloc = 0;
                    self.ages.fill(0);
                    self.nursery_forwarded.iter_mut().for_each(|w| *w = 0);
                }
                self.flip();
            }
        }
    }

    /// Words promoted to tenured by the most recent minor collection
    /// (0 after a major).
    pub fn last_promoted_words(&self) -> u64 {
        self.last_promoted_words
    }

    /// Nursery words reclaimed (died young) by the most recent minor
    /// collection (0 after a major).
    pub fn last_died_young_words(&self) -> u64 {
        self.last_died_young_words
    }

    /// Finishes a (major) collection: to-space becomes from-space, the
    /// bitmap is cleared (and resized to cover the new from-space),
    /// statistics are updated.
    pub fn flip(&mut self) {
        self.a_is_from = !self.a_is_from;
        self.from_alloc = self.to_alloc;
        self.to_alloc = 0;
        let bitmap_words = self.space_from().len().div_ceil(64);
        self.forwarded.clear();
        self.forwarded.resize(bitmap_words, 0);
        self.stats.collections += 1;
        self.stats.live_words_after_last_gc = (self.from_alloc + self.sur_from_alloc) as u64;
        self.stats.peak_live_words = self
            .stats
            .peak_live_words
            .max(self.stats.live_words_after_last_gc);
    }

    /// Checks the quiescent generational invariants: phase idle, bumps
    /// within bounds, survivor-to half empty, no nursery forwarding bit
    /// leaked past a collection. Cheap (no heap walk — the verifier
    /// does the pointer scan); returns the first violation found.
    pub fn check_generational_invariants(&self) -> Result<(), String> {
        if self.phase != Phase::Idle {
            return Err("heap phase not idle between collections".into());
        }
        if !self.generational() {
            return Ok(());
        }
        if self.eden_alloc > self.eden_cap {
            return Err(format!(
                "eden bump {} exceeds capacity {}",
                self.eden_alloc, self.eden_cap
            ));
        }
        if self.sur_from_alloc > self.survivor_cap {
            return Err(format!(
                "survivor bump {} exceeds capacity {}",
                self.sur_from_alloc, self.survivor_cap
            ));
        }
        if self.sur_to_alloc != 0 {
            return Err(format!(
                "survivor to-half not empty between collections: {} words",
                self.sur_to_alloc
            ));
        }
        if self.nursery_forwarded.iter().any(|&w| w != 0) {
            return Err("nursery forwarding bits leaked past a collection".into());
        }
        Ok(())
    }

    /// Transient collector-side memory (forwarding bitmaps plus the
    /// nursery age table), in bytes.
    pub fn collector_side_bytes(&self) -> usize {
        self.forwarded.len() * 8 + self.nursery_forwarded.len() * 8 + self.ages.len()
    }

    /// Resets the heap to empty (used between benchmark iterations).
    pub fn reset(&mut self) {
        self.from_alloc = 0;
        self.to_alloc = 0;
        self.forwarded.iter_mut().for_each(|w| *w = 0);
        self.eden_alloc = 0;
        self.sur_from_alloc = 0;
        self.sur_to_alloc = 0;
        self.phase = Phase::Idle;
        self.ages.fill(0);
        self.nursery_forwarded.iter_mut().for_each(|w| *w = 0);
        self.stats = HeapStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_bumps_and_reports_exhaustion() {
        let mut h = Heap::new(8);
        let a = h.alloc(4).unwrap();
        assert_eq!(a, Addr(HEAP_BASE));
        let b = h.alloc(4).unwrap();
        assert_eq!(b, Addr(HEAP_BASE + 4));
        assert!(h.alloc(1).is_none());
        assert_eq!(h.stats.allocations, 2);
        assert_eq!(h.stats.words_allocated, 8);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut h = Heap::new(16);
        let a = h.alloc(3).unwrap();
        h.write(a, 0, 10);
        h.write(a, 2, 30);
        assert_eq!(h.read(a, 0), 10);
        assert_eq!(h.read(a, 2), 30);
    }

    #[test]
    fn copy_and_forward() {
        let mut h = Heap::new(16);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 7);
        h.write(a, 1, 8);
        assert!(h.forward_of(a).is_none());
        let na = h.copy_out(a, 2);
        assert!(h.in_to(na));
        h.set_forward(a, na);
        assert_eq!(h.forward_of(a), Some(na));
        assert_eq!(h.read(na, 0), 7);
        assert_eq!(h.read(na, 1), 8);
    }

    #[test]
    fn flip_swaps_spaces() {
        let mut h = Heap::new(16);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 42);
        let na = h.copy_out(a, 2);
        h.set_forward(a, na);
        h.flip();
        assert!(h.in_from(na));
        assert!(!h.in_from(a));
        assert_eq!(h.read(na, 0), 42);
        assert_eq!(h.used(), 2);
        assert_eq!(h.stats.collections, 1);
        // New allocations land after the survivors.
        let b = h.alloc(1).unwrap();
        assert!(h.in_from(b));
        assert_ne!(b, na);
    }

    #[test]
    fn forwarding_bitmap_clears_on_flip() {
        let mut h = Heap::new(16);
        let a = h.alloc(1).unwrap();
        let na = h.copy_out(a, 1);
        h.set_forward(a, na);
        h.flip();
        // `na` occupies the same offset class; it must not read as
        // forwarded in the new from-space.
        assert!(h.forward_of(na).is_none());
    }

    #[test]
    fn two_collections_round_trip_data() {
        let mut h = Heap::new(8);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 1);
        h.write(a, 1, 2);
        let n1 = h.copy_out(a, 2);
        h.set_forward(a, n1);
        h.flip();
        let n2 = h.copy_out(n1, 2);
        h.set_forward(n1, n2);
        h.flip();
        assert_eq!(h.read(n2, 0), 1);
        assert_eq!(h.read(n2, 1), 2);
        assert_eq!(h.stats.collections, 2);
    }

    #[test]
    fn spaces_have_disjoint_fixed_bases() {
        let mut h = Heap::new(8);
        let a = h.alloc(8).unwrap();
        assert_eq!(a, Addr(HEAP_BASE));
        let na = h.copy_out(a, 8);
        assert_eq!(na, Addr(SPACE_B_BASE));
        h.set_forward(a, na);
        h.flip();
        // After the flip new allocations come from space B's range.
        let b = h.alloc(0).unwrap();
        assert!(b.0 >= SPACE_B_BASE);
        // The nursery range sits above both spaces' maximal extents.
        assert_eq!(NURSERY_BASE, SPACE_B_BASE + MAX_SPACE_WORDS as u64);
    }

    #[test]
    fn growth_preserves_addresses_across_collection() {
        let mut h = Heap::new(4);
        let a = h.alloc(4).unwrap();
        h.write(a, 0, 11);
        h.write(a, 3, 44);
        assert!(h.alloc(1).is_none());
        // Grow to-space, "collect" the one live object, flip, then grow
        // the other space: capacity doubles and data survives in place.
        assert!(h.reserve_to_space(8));
        let na = h.copy_out(a, 4);
        h.set_forward(a, na);
        h.flip();
        assert!(h.reserve_to_space(8));
        assert_eq!(h.capacity(), 8);
        assert_eq!(h.to_space_capacity(), 8);
        assert_eq!(h.read(na, 0), 11);
        assert_eq!(h.read(na, 3), 44);
        let b = h.alloc(4).unwrap();
        assert!(h.in_from(b));
        // Shrinking is a no-op.
        assert!(!h.reserve_to_space(2));
    }

    #[test]
    fn forwarding_bitmap_resizes_with_growth() {
        let mut h = Heap::new(64);
        let a = h.alloc(64).unwrap();
        h.reserve_to_space(256);
        let na = h.copy_out(a, 64);
        h.set_forward(a, na);
        h.flip();
        // Bitmap now covers the 256-word from-space.
        assert_eq!(h.collector_side_bytes(), 256usize.div_ceil(64) * 8);
        let b = h.alloc(150).unwrap();
        let _ = b;
        assert!(h.forward_of(Addr(h.live_span().0 + 199)).is_none());
    }

    // ---- generational tier --------------------------------------------

    #[test]
    fn generational_alloc_lands_in_nursery() {
        let mut h = Heap::new_generational(64, 16, 0);
        let a = h.alloc(4).unwrap();
        assert!(h.in_nursery(a));
        assert_eq!(a, Addr(NURSERY_BASE));
        assert_eq!(h.nursery_used(), 4);
        assert_eq!(h.used(), 0);
        h.write(a, 1, 99);
        assert_eq!(h.read(a, 1), 99);
    }

    #[test]
    fn promote_after_zero_promotes_on_first_survival() {
        let mut h = Heap::new_generational(64, 16, 0);
        assert_eq!(h.survivor_capacity(), 0);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 5);
        h.write(a, 1, 6);
        let _dead = h.alloc(3).unwrap();
        h.begin_collection(true);
        let b = h.copy_out(a, 2);
        h.set_forward(a, b);
        assert_eq!(h.forward_of(a), Some(b));
        assert!(!h.in_nursery(b));
        assert!(h.in_from(b));
        h.finish_collection();
        assert_eq!(h.last_promoted_words(), 2);
        assert_eq!(h.last_died_young_words(), 3);
        assert_eq!(h.read(b, 0), 5);
        assert_eq!(h.nursery_used(), 0);
        assert_eq!(h.used(), 2);
        h.check_generational_invariants().unwrap();
    }

    #[test]
    fn promote_after_one_keeps_first_survivor_in_nursery() {
        let mut h = Heap::new_generational(64, 16, 1);
        assert!(h.survivor_capacity() > 0);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 77);
        // First minor: age 1 <= promote_after, stays in the survivor.
        h.begin_collection(true);
        let b = h.copy_out(a, 2);
        h.set_forward(a, b);
        h.finish_collection();
        assert!(h.in_nursery(b));
        assert_eq!(h.last_promoted_words(), 0);
        assert_eq!(h.nursery_used(), 2);
        h.check_generational_invariants().unwrap();
        // Second minor: age 2 > promote_after, promotes to tenured.
        h.begin_collection(true);
        let c = h.copy_out(b, 2);
        h.set_forward(b, c);
        h.finish_collection();
        assert!(h.in_from(c));
        assert_eq!(h.last_promoted_words(), 2);
        assert_eq!(h.read(c, 0), 77);
        assert_eq!(h.nursery_used(), 0);
        h.check_generational_invariants().unwrap();
    }

    #[test]
    fn major_empties_nursery_into_to_space() {
        let mut h = Heap::new_generational(64, 16, 1);
        let a = h.alloc(2).unwrap();
        h.write(a, 0, 13);
        h.begin_collection(false);
        let b = h.copy_out(a, 2);
        h.set_forward(a, b);
        assert!(!h.in_nursery(b));
        assert!(h.in_to(b));
        h.finish_collection();
        assert_eq!(h.nursery_used(), 0);
        assert_eq!(h.read(b, 0), 13);
        assert!(h.in_from(b));
        h.check_generational_invariants().unwrap();
    }

    #[test]
    fn oversize_alloc_goes_tenured_only_when_nursery_empty() {
        let mut h = Heap::new_generational(64, 8, 0);
        // Oversize while nursery empty: lands tenured directly.
        let big = h.alloc(10).unwrap();
        assert!(h.in_from(big));
        // Small allocations still land in the nursery.
        let small = h.alloc(2).unwrap();
        assert!(h.in_nursery(small));
        // Oversize with a non-empty nursery must refuse (forces a major).
        assert!(h.alloc(10).is_none());
    }

    #[test]
    fn minor_treats_tenured_as_already_relocated() {
        let mut h = Heap::new_generational(64, 8, 0);
        let t = h.alloc(10).unwrap(); // oversize -> tenured
        let n = h.alloc(2).unwrap();
        h.begin_collection(true);
        assert!(h.in_to(t));
        assert!(!h.in_to(n));
        let m = h.copy_out(n, 2);
        h.set_forward(n, m);
        assert!(h.in_to(m));
        h.finish_collection();
        h.check_generational_invariants().unwrap();
    }

    #[test]
    fn survivor_overflow_promotes_regardless_of_age() {
        // nursery 16, promote_after 1 -> survivor halves of 4 words.
        let mut h = Heap::new_generational(64, 16, 1);
        let cap = h.survivor_capacity();
        let a = h.alloc(cap + 2).unwrap();
        h.begin_collection(true);
        let b = h.copy_out(a, cap + 2);
        h.set_forward(a, b);
        assert!(h.in_from(b));
        h.finish_collection();
        assert_eq!(h.last_promoted_words(), (cap + 2) as u64);
        h.check_generational_invariants().unwrap();
    }

    #[test]
    fn span_of_covers_all_live_regions() {
        let mut h = Heap::new_generational(64, 16, 0);
        let big = h.alloc(20).unwrap(); // tenured
        let small = h.alloc(2).unwrap(); // eden
        assert!(h.span_of(big).is_some());
        assert!(h.span_of(small).is_some());
        // Past the eden bump: not a live region.
        assert!(h.span_of(Addr(NURSERY_BASE + 10)).is_none());
        // Past the tenured bump: not a live region.
        assert!(h.span_of(Addr(HEAP_BASE + 30)).is_none());
    }

    #[test]
    fn occupancy_reports_nursery() {
        let mut h = Heap::new_generational(64, 16, 1);
        h.alloc(3).unwrap();
        let s = h.occupancy();
        assert_eq!(s.nursery_words, 3);
        assert_eq!(s.nursery_capacity_words, h.nursery_capacity() as u64);
        let t = Heap::new(8).occupancy();
        assert_eq!(t.nursery_words, 0);
        assert_eq!(t.nursery_capacity_words, 0);
    }
}
