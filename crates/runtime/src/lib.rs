//! # tfgc-runtime — heap and value encodings
//!
//! The machine substrate under both collectors: a semispace copying heap
//! over raw 64-bit words, plus the two value encodings the paper compares
//! — tag-free (headerless objects, full-width integers) and the tagged ML
//! baseline (low-bit tags, one header word per object).
//!
//! ```
//! use tfgc_runtime::{Encoding, Heap, HeapMode};
//!
//! let mut heap = Heap::new(1024);
//! let enc = Encoding::new(HeapMode::TagFree);
//! let cell = heap.alloc(2).expect("fits");
//! heap.write(cell, 0, enc.int(42));
//! assert_eq!(enc.int_of(heap.read(cell, 0)), 42);
//! ```

pub mod encode;
pub mod heap;
pub mod stats;
pub mod word;

pub use encode::{ArithKind, Encoding};
pub use heap::{Heap, MAX_SPACE_WORDS, NURSERY_BASE, SPACE_B_BASE};
pub use stats::{HeapStats, OccupancySample};
pub use word::{Addr, HeapMode, Word, HEAP_BASE};
