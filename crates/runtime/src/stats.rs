//! Heap and collection statistics — the raw numbers behind experiments
//! E1 (heap-space overhead) and E3/E4 (collection work).

/// Counters maintained by [`crate::heap::Heap`] and the collectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of successful allocations.
    pub allocations: u64,
    /// Total words handed out (including headers, when the encoding has
    /// them — compare across modes for E1).
    pub words_allocated: u64,
    /// Completed collections.
    pub collections: u64,
    /// Objects copied by collections.
    pub objects_copied: u64,
    /// Words copied by collections.
    pub words_copied: u64,
    /// Live words surviving the most recent collection.
    pub live_words_after_last_gc: u64,
    /// Maximum of `live_words_after_last_gc` over the run.
    pub peak_live_words: u64,
    /// Times the heap grew under the bounded growth policy.
    pub grows: u64,
}

impl HeapStats {
    /// Mean live words per collection (0 when no collection ran).
    pub fn mean_live_words(&self) -> f64 {
        if self.collections == 0 {
            0.0
        } else {
            self.words_copied as f64 / self.collections as f64
        }
    }
}

/// One instantaneous occupancy reading, taken by the serve scheduler at
/// deterministic points (quantum counts and request boundaries). The
/// fields are pure functions of the instruction stream — no wall clock —
/// so sampled peaks are reproducible across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancySample {
    /// From-space words currently in use (bump-pointer position).
    pub heap_words: u64,
    /// Current semispace capacity in words.
    pub capacity_words: u64,
    /// Live words surviving the most recent collection (0 before the
    /// first collection).
    pub live_words: u64,
    /// Nursery words currently in use (eden bump plus the occupied
    /// survivor half; 0 in single-generation mode).
    pub nursery_words: u64,
    /// Nursery capacity visible to the mutator (0 in single-generation
    /// mode).
    pub nursery_capacity_words: u64,
}

impl OccupancySample {
    /// Occupancy as a fraction of capacity (0.0 for an empty heap).
    pub fn fraction(&self) -> f64 {
        if self.capacity_words == 0 {
            0.0
        } else {
            self.heap_words as f64 / self.capacity_words as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_live_words_handles_zero() {
        let s = HeapStats::default();
        assert_eq!(s.mean_live_words(), 0.0);
        let s = HeapStats {
            collections: 2,
            words_copied: 10,
            ..HeapStats::default()
        };
        assert_eq!(s.mean_live_words(), 5.0);
    }
}
