//! Value encodings.
//!
//! The tag-free encoding stores integers at full 64-bit width and pointers
//! as bare addresses — §1's first claimed advantage ("larger integers can
//! be represented without resorting to multi-word representations").
//!
//! The tagged baseline is the standard ML low-bit scheme: integers are
//! `(i << 1) | 1` (so only 63 bits wide), pointers are even words.
//! Arithmetic must strip and reinstate tags; [`Encoding::arith_tag_ops`]
//! reports the extra ALU operations per operator using the classic
//! strength-reduced forms (e.g. tagged add is `a + b - 1`), and the
//! encode/decode work is performed for real by the VM, so both the
//! counter-based and wall-clock measurements of §1's second advantage are
//! grounded.

use crate::word::{Addr, HeapMode, Word};

/// Encoder/decoder for one heap mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoding {
    pub mode: HeapMode,
}

impl Encoding {
    /// Creates the encoding for `mode`.
    pub fn new(mode: HeapMode) -> Self {
        Encoding { mode }
    }

    /// Encodes an integer.
    ///
    /// In tagged mode the value is truncated to 63 bits (the overhead the
    /// paper's first advantage eliminates).
    pub fn int(&self, i: i64) -> Word {
        match self.mode {
            HeapMode::TagFree => i as Word,
            HeapMode::Tagged => ((i as Word) << 1) | 1,
        }
    }

    /// Decodes an integer.
    pub fn int_of(&self, w: Word) -> i64 {
        match self.mode {
            HeapMode::TagFree => w as i64,
            HeapMode::Tagged => (w as i64) >> 1,
        }
    }

    /// Encodes a boolean (`false` → int 0, `true` → int 1).
    pub fn bool(&self, b: bool) -> Word {
        self.int(i64::from(b))
    }

    /// Decodes a boolean.
    pub fn bool_of(&self, w: Word) -> bool {
        self.int_of(w) != 0
    }

    /// Encodes unit (int 0).
    pub fn unit(&self) -> Word {
        self.int(0)
    }

    /// Encodes a heap pointer.
    pub fn ptr(&self, a: Addr) -> Word {
        match self.mode {
            HeapMode::TagFree => a.0,
            HeapMode::Tagged => a.0 << 1,
        }
    }

    /// Decodes a heap pointer.
    pub fn addr_of(&self, w: Word) -> Addr {
        match self.mode {
            HeapMode::TagFree => Addr(w),
            HeapMode::Tagged => Addr(w >> 1),
        }
    }

    /// Tagged mode only: is this word a (tagged) pointer? The tagged
    /// collector's entire root-identification logic (§1: the tags exist
    /// "to support garbage collection").
    pub fn is_tagged_ptr(&self, w: Word) -> bool {
        debug_assert_eq!(self.mode, HeapMode::Tagged);
        w & 1 == 0
    }

    /// Extra ALU operations tagged arithmetic performs over untagged, per
    /// operator, using the standard strength-reduced forms:
    /// add `a+b-1`, sub `a-b+1`, mul `(a>>1)*(b-1)+1`, div/mod full
    /// untag–op–retag, negation `2-a`.
    pub fn arith_tag_ops(&self, op: ArithKind) -> u64 {
        if self.mode == HeapMode::TagFree {
            return 0;
        }
        match op {
            ArithKind::Add | ArithKind::Sub | ArithKind::Neg => 1,
            ArithKind::Mul => 2,
            ArithKind::Div | ArithKind::Mod => 3,
            // Tagged integers compare directly (the encoding is
            // monotonic), so comparisons are free.
            ArithKind::Cmp => 0,
        }
    }
}

/// Operator classes for tag-overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Cmp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagfree_ints_are_identity() {
        let e = Encoding::new(HeapMode::TagFree);
        for i in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(e.int_of(e.int(i)), i);
        }
    }

    #[test]
    fn tagged_ints_roundtrip_63_bits() {
        let e = Encoding::new(HeapMode::Tagged);
        for i in [0i64, 1, -1, (1 << 62) - 1, -(1 << 62)] {
            assert_eq!(e.int_of(e.int(i)), i);
        }
        // Tagged words are always odd.
        assert_eq!(e.int(7) & 1, 1);
    }

    #[test]
    fn tagged_ordering_is_preserved() {
        let e = Encoding::new(HeapMode::Tagged);
        assert!((e.int(-5) as i64) < (e.int(3) as i64));
        assert!((e.int(3) as i64) < (e.int(4) as i64));
    }

    #[test]
    fn pointers_roundtrip() {
        for mode in [HeapMode::TagFree, HeapMode::Tagged] {
            let e = Encoding::new(mode);
            let a = Addr(123456);
            assert_eq!(e.addr_of(e.ptr(a)), a);
        }
        let t = Encoding::new(HeapMode::Tagged);
        assert!(t.is_tagged_ptr(t.ptr(Addr(5000))));
        assert!(!t.is_tagged_ptr(t.int(5000)));
    }

    #[test]
    fn tag_op_costs() {
        let t = Encoding::new(HeapMode::Tagged);
        let f = Encoding::new(HeapMode::TagFree);
        assert_eq!(t.arith_tag_ops(ArithKind::Add), 1);
        assert_eq!(t.arith_tag_ops(ArithKind::Div), 3);
        assert_eq!(t.arith_tag_ops(ArithKind::Cmp), 0);
        assert_eq!(f.arith_tag_ops(ArithKind::Mul), 0);
    }

    #[test]
    fn bool_unit_encoding() {
        for mode in [HeapMode::TagFree, HeapMode::Tagged] {
            let e = Encoding::new(mode);
            assert!(e.bool_of(e.bool(true)));
            assert!(!e.bool_of(e.bool(false)));
            assert_eq!(e.int_of(e.unit()), 0);
        }
    }
}
