//! Machine words and heap addresses.
//!
//! Everything a TFML program manipulates is one 64-bit [`Word`]: integers,
//! booleans, unit, immediate constructors, heap pointers, descriptor
//! indices. Whether a word carries a tag is the whole point of the
//! reproduction — see [`crate::encode`].

/// One machine word.
pub type Word = u64;

/// Word addresses below this value are immediates (nullary constructors,
/// booleans, unit); heap addresses start here. This is how the paper's
/// `cons_cell` distinguishes `NULL` from a pointer without a tag bit
/// (§2.4). Must equal `tfgc_ir::IMM_LIMIT` (checked by an integration
/// test).
pub const HEAP_BASE: u64 = 4096;

/// An absolute heap address (word index, `>= HEAP_BASE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl Addr {
    /// The address `off` words past this one.
    pub fn offset(self, off: u16) -> Addr {
        Addr(self.0 + u64::from(off))
    }
}

/// Which value encoding the machine runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapMode {
    /// Goldberg's scheme: full-width integers, headerless objects, no tag
    /// bits anywhere; the collector learns layouts from compiler-generated
    /// metadata.
    TagFree,
    /// The "current ML implementations" baseline (§1): low-bit tagging —
    /// odd words are 63-bit integers, even words are pointers — plus one
    /// header word per heap object so the collector can scan without
    /// compiler metadata.
    Tagged,
}

impl HeapMode {
    /// Header words per heap object under this encoding.
    pub fn header_words(self) -> usize {
        match self {
            HeapMode::TagFree => 0,
            HeapMode::Tagged => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset() {
        assert_eq!(Addr(5000).offset(3), Addr(5003));
    }

    #[test]
    fn header_words_differ() {
        assert_eq!(HeapMode::TagFree.header_words(), 0);
        assert_eq!(HeapMode::Tagged.header_words(), 1);
    }
}
