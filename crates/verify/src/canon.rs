//! Canonical, encoding-independent heap snapshots.
//!
//! A [`CanonHeap`] is the reachable word set of a program at one moment,
//! rendered so the tag-free and tagged encodings of the *same* abstract
//! state compare equal:
//!
//! * immediates are decoded (a tagged `2·i + 1` and a tag-free `i` both
//!   canonicalize to `Imm(i)`);
//! * pointers become indices into a discovery-ordered object list (both
//!   walkers discover breadth-first, enumerating each object's payload in
//!   layout order, so isomorphic graphs get identical indices);
//! * tagged header words are dropped (the payload length is implicit in
//!   `fields.len()`), while discriminants, closure code pointers, and
//!   descriptor ids — real payload in both encodings — are kept as
//!   decoded immediates.
//!
//! Diffing two snapshots ([`diff`]) is therefore a word-for-word
//! comparison of what the two collectors consider reachable.

/// One canonical word: a decoded immediate or a reference to the `n`th
/// discovered object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanonWord {
    /// A decoded non-pointer value (integer, bool, unit, nullary
    /// constructor, discriminant, code pointer, descriptor id).
    Imm(i64),
    /// A pointer to the object at this index in [`CanonHeap::objects`].
    Ref(u32),
}

/// One reachable object: its payload words in layout order (headers
/// excluded; discriminants included).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CanonObj {
    pub fields: Vec<CanonWord>,
}

/// A canonical snapshot of everything reachable from the collector's
/// roots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CanonHeap {
    /// Root words in enumeration order (globals, then each stack's frames
    /// oldest → newest with each frame's traced slots in routine order,
    /// then pending allocation operands).
    pub roots: Vec<CanonWord>,
    /// Reachable objects in breadth-first discovery order.
    pub objects: Vec<CanonObj>,
}

impl CanonHeap {
    /// Total payload words across all reachable objects.
    pub fn words(&self) -> u64 {
        self.objects.iter().map(|o| o.fields.len() as u64).sum()
    }
}

fn word_str(w: CanonWord) -> String {
    match w {
        CanonWord::Imm(i) => format!("imm {i}"),
        CanonWord::Ref(i) => format!("ref #{i}"),
    }
}

/// Compares two snapshots; `None` means word-for-word identical,
/// otherwise a description of the first divergence.
pub fn diff(a: &CanonHeap, b: &CanonHeap) -> Option<String> {
    if a.roots.len() != b.roots.len() {
        return Some(format!(
            "root count differs: {} vs {}",
            a.roots.len(),
            b.roots.len()
        ));
    }
    for (i, (ra, rb)) in a.roots.iter().zip(&b.roots).enumerate() {
        if ra != rb {
            return Some(format!(
                "root {} differs: {} vs {}",
                i,
                word_str(*ra),
                word_str(*rb)
            ));
        }
    }
    if a.objects.len() != b.objects.len() {
        return Some(format!(
            "reachable object count differs: {} vs {}",
            a.objects.len(),
            b.objects.len()
        ));
    }
    for (i, (oa, ob)) in a.objects.iter().zip(&b.objects).enumerate() {
        if oa.fields.len() != ob.fields.len() {
            return Some(format!(
                "object #{} size differs: {} vs {} words",
                i,
                oa.fields.len(),
                ob.fields.len()
            ));
        }
        for (k, (fa, fb)) in oa.fields.iter().zip(&ob.fields).enumerate() {
            if fa != fb {
                return Some(format!(
                    "object #{} word {} differs: {} vs {}",
                    i,
                    k,
                    word_str(*fa),
                    word_str(*fb)
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_snapshots_diff_to_none() {
        let h = CanonHeap {
            roots: vec![CanonWord::Imm(1), CanonWord::Ref(0)],
            objects: vec![CanonObj {
                fields: vec![CanonWord::Imm(7)],
            }],
        };
        assert_eq!(diff(&h, &h.clone()), None);
        assert_eq!(h.words(), 1);
    }

    #[test]
    fn divergences_name_the_first_difference() {
        let a = CanonHeap {
            roots: vec![CanonWord::Ref(0)],
            objects: vec![CanonObj {
                fields: vec![CanonWord::Imm(1), CanonWord::Imm(2)],
            }],
        };
        let mut b = a.clone();
        b.objects[0].fields[1] = CanonWord::Imm(3);
        let d = diff(&a, &b).unwrap();
        assert!(d.contains("object #0 word 1"), "{d}");
        let mut c = a.clone();
        c.roots[0] = CanonWord::Imm(0);
        assert!(diff(&a, &c).unwrap().contains("root 0"));
        let e = CanonHeap::default();
        assert!(diff(&a, &e).unwrap().contains("root count"));
    }
}
