//! # tfgc-verify — heap verification, differential oracle, fault injection
//!
//! Goldberg's central claim is that tag-free collection is *exactly* as
//! safe as tagged collection: the type metadata must identify precisely
//! the pointers a tag bit would. This crate checks that claim at runtime
//! instead of assuming it:
//!
//! * **Heap verifier** ([`verify_tagfree`] / [`verify_tagged`]) — a
//!   read-only walk of the reachable graph from the same roots the
//!   collector used, asserting every pointer is in-bounds and inside the
//!   current from-space, every object extent fits the live span, objects
//!   never overlap, discriminants name a real variant, and closure code
//!   pointers and descriptor ids are in range. Run after a collection it
//!   proves no forwarding word or to-space pointer survived the flip.
//! * **Tagged oracle** ([`snapshot_tagfree`] / [`snapshot_tagged`]) — the
//!   same walk rendered as a [`canon::CanonHeap`]: a canonical,
//!   encoding-independent picture of the reachable word set. Running a
//!   program twice — once under a tag-free strategy, once under the
//!   tagged baseline with the *same* collection schedule — and diffing
//!   the snapshots checks that metadata-driven tracing and tag-driven
//!   tracing agree word-for-word on what is reachable.
//! * **Fault injection** ([`fault::FaultPlan`]) — seeded, deterministic
//!   faults (allocation failure, heap exhaustion, discriminant
//!   corruption, truncated frame type-parameter maps) that the VM injects
//!   so tests can prove each fault class is *detected* with a structured
//!   error rather than silently mistraced.
//!
//! The crate deliberately re-implements the collector's traversal from
//! the gc crate's public metadata (templates, plans, descriptors) rather
//! than calling into the collector: a shared bug would hide itself.

pub mod canon;
pub mod fault;
pub mod panic;
pub mod walker;

pub use canon::{diff, CanonHeap, CanonObj, CanonWord};
pub use fault::FaultPlan;
pub use panic::{
    capture_panics, capture_panics_mut, panic_message, with_quiet_panics, CapturedPanic,
};
pub use walker::{
    snapshot_tagfree, snapshot_tagged, verify_tagfree, verify_tagged, VerifyError, VerifyReport,
};

use tfgc_ir::CallSiteId;
use tfgc_runtime::Word;

/// A read-only view of one task's activation-record stack.
#[derive(Debug, Clone, Copy)]
pub struct StackView<'a> {
    /// The whole activation-record stack.
    pub stack: &'a [Word],
    /// Base of the newest frame.
    pub top_fp: usize,
    /// Site the newest frame is suspended at.
    pub current_site: CallSiteId,
}

/// A read-only view of the mutator state — the verifier's analog of the
/// collector's `MachineRoots`.
#[derive(Debug)]
pub struct RootsView<'a> {
    /// All live task stacks.
    pub stacks: Vec<StackView<'a>>,
    /// Global variable words.
    pub globals: &'a [Word],
    /// Pending operand words of the allocation in progress, typed by
    /// `stacks[operand_stack]`'s current site.
    pub operands: &'a [Word],
    /// Index of the stack whose suspension site types the operands.
    pub operand_stack: usize,
}

/// Panic-message prefixes of the runtime's *structured* fail-fast panics
/// (PR 3's corruption-context style). The torture harness accepts these —
/// they carry site/seq/strategy context — and rejects anything else.
pub const STRUCTURED_PANIC_PREFIXES: &[&str] = &[
    "heap corruption:",
    "type parameter",
    "extraction path",
    "collection while suspended at site",
    "collection while task",
];

/// Is `msg` one of the runtime's structured fail-fast panics?
pub fn is_structured_panic(msg: &str) -> bool {
    STRUCTURED_PANIC_PREFIXES.iter().any(|p| msg.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_panic_prefixes_are_recognized() {
        assert!(is_structured_panic(
            "heap corruption: discriminant 99 at address 5000"
        ));
        assert!(is_structured_panic(
            "type parameter 3 out of range: environment carries 1 routine(s)"
        ));
        assert!(!is_structured_panic("index out of bounds: the len is 4"));
        assert!(!is_structured_panic("attempt to subtract with overflow"));
    }
}
