//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names at most one fault per class, keyed to a
//! deterministic event count (the VM's allocation sequence number), so a
//! failing torture run replays exactly from its seed. The VM consults the
//! plan at well-defined points:
//!
//! * `alloc_fail_at` — the `n`th allocation reports the heap full once
//!   even though space remains, forcing the collect-and-retry path.
//! * `exhaust_at` — from the `n`th allocation on, heap growth is refused,
//!   so collection must either reclaim enough or surface a structured
//!   out-of-memory error.
//! * `corrupt_discriminant_at` — the `n`th allocation of a *tagged*
//!   datatype object gets its discriminant word overwritten with a value
//!   matching no variant; the next trace through it must fail fast with
//!   the `heap corruption:` panic, never silently mistrace.
//! * `truncate_frame_params_of` — function `f`'s frame type-parameter
//!   sources are truncated before the program runs, so the first
//!   collection through one of its frames hits the `type parameter N out
//!   of range` fail-fast panic (a torn stack-map fault).
//! * `stall_at` — the task thread performing the `n`th allocation starts
//!   spinning forever right after it (a runaway-handler fault): every
//!   subsequent step burns an instruction without making progress, so
//!   only a deadline/fuel budget (or the whole-machine step limit) can
//!   end it. Arms on cooperative task threads only — the batch pipeline
//!   and the main/globals phase are never stalled.

/// A deterministic schedule of injected faults (all counts 1-based;
/// `None` = fault disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Report allocation failure (once) at this allocation sequence
    /// number, exercising collect-and-retry.
    pub alloc_fail_at: Option<u64>,
    /// Refuse heap growth from this allocation sequence number on,
    /// simulating exhausted memory.
    pub exhaust_at: Option<u64>,
    /// Corrupt the discriminant word of the object built by this
    /// allocation sequence number (tagged datatype allocations only).
    pub corrupt_discriminant_at: Option<u64>,
    /// Truncate the frame type-parameter sources of this function id
    /// before the run starts.
    pub truncate_frame_params_of: Option<u32>,
    /// Stall (spin forever) the task thread that performs this allocation
    /// sequence number; cooperative task threads only.
    pub stall_at: Option<u64>,
}

/// `splitmix64` — tiny, dependency-free, well-distributed; the same
/// generator the workloads crate uses, so seeds mean the same thing
/// everywhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derives one single-fault plan from a seed: the fault class and its
    /// trigger point are both seed-determined, so a torture matrix over
    /// seeds covers every class with varied timing.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        let kind = splitmix64(&mut s) % 5;
        // Small trigger counts: workload programs allocate tens to
        // hundreds of objects, and a fault beyond the last allocation
        // never fires.
        let at = 1 + splitmix64(&mut s) % 24;
        let mut plan = FaultPlan::none();
        match kind {
            0 => plan.alloc_fail_at = Some(at),
            1 => plan.exhaust_at = Some(at),
            2 => plan.corrupt_discriminant_at = Some(at),
            3 => plan.truncate_frame_params_of = Some((at % 4) as u32),
            _ => plan.stall_at = Some(at),
        }
        plan
    }

    /// No fault armed?
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::none()
    }

    /// Human-readable one-liner for logs and torture reports.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.alloc_fail_at {
            parts.push(format!("alloc-fail@{n}"));
        }
        if let Some(n) = self.exhaust_at {
            parts.push(format!("exhaust@{n}"));
        }
        if let Some(n) = self.corrupt_discriminant_at {
            parts.push(format!("corrupt-discriminant@{n}"));
        }
        if let Some(f) = self.truncate_frame_params_of {
            parts.push(format!("truncate-frame-params(fn {f})"));
        }
        if let Some(n) = self.stall_at {
            parts.push(format!("stall@{n}"));
        }
        if parts.is_empty() {
            "no faults".to_string()
        } else {
            parts.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_single_fault() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            let armed = usize::from(a.alloc_fail_at.is_some())
                + usize::from(a.exhaust_at.is_some())
                + usize::from(a.corrupt_discriminant_at.is_some())
                + usize::from(a.truncate_frame_params_of.is_some())
                + usize::from(a.stall_at.is_some());
            assert_eq!(armed, 1, "seed {seed} armed {armed} faults");
        }
    }

    #[test]
    fn seeds_cover_every_fault_class() {
        let plans: Vec<FaultPlan> = (0..64).map(FaultPlan::from_seed).collect();
        assert!(plans.iter().any(|p| p.alloc_fail_at.is_some()));
        assert!(plans.iter().any(|p| p.exhaust_at.is_some()));
        assert!(plans.iter().any(|p| p.corrupt_discriminant_at.is_some()));
        assert!(plans.iter().any(|p| p.truncate_frame_params_of.is_some()));
        assert!(plans.iter().any(|p| p.stall_at.is_some()));
    }

    #[test]
    fn describe_names_the_armed_fault() {
        assert_eq!(FaultPlan::none().describe(), "no faults");
        let p = FaultPlan {
            exhaust_at: Some(7),
            ..FaultPlan::none()
        };
        assert!(!p.is_empty());
        assert_eq!(p.describe(), "exhaust@7");
        let s = FaultPlan {
            stall_at: Some(11),
            ..FaultPlan::none()
        };
        assert_eq!(s.describe(), "stall@11");
    }
}
