//! Reachable-graph walkers.
//!
//! Two independent read-only traversals of the runtime state:
//!
//! * [`TypedWalker`] re-derives the collector's typed view — frame
//!   routines selected by gc_words, type-routine environments propagated
//!   oldest → newest through θ/closure plans (§3), Figure-3 path
//!   extraction, byte descriptors — directly from the public metadata,
//!   *without* the collector's cache or its mutating relocation. It
//!   checks every invariant a correct collection must preserve and
//!   renders the reachable set as a [`CanonHeap`].
//! * [`TaggedWalker`] walks the same roots using only tag bits and
//!   header words, exactly as `collect_tagged` would.
//!
//! Both discover objects breadth-first and enumerate payloads in layout
//! order, so a tag-free run and a tagged run of the same program at the
//! same collection produce snapshots that compare word-for-word.

use crate::canon::{CanonHeap, CanonObj, CanonWord};
use crate::RootsView;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use tfgc_gc::bytes::{BytePool, DescView};
use tfgc_gc::desc::{DescArena, DescId};
use tfgc_gc::ground::{GroundTable, TypeRt, VariantRt};
use tfgc_gc::meta::{CalleePlan, ClosParamSrc, FnGcMeta, FrameParamSrc, GcMeta, SiteMeta};
use tfgc_gc::routines::{RoutineTable, TraceOp};
use tfgc_gc::rtval::{desc_to_rt, eval_sx, extract_path, EvalCx, RtBuildStats, RtVal};
use tfgc_gc::stack::{walk_frames, FrameInfo, FRAME_HDR};
use tfgc_gc::strategy::Strategy;
use tfgc_gc::sx::{SxId, SxTable};
use tfgc_ir::{CallSiteId, CtorRep, IrProgram};
use tfgc_runtime::{Addr, Encoding, Heap, HeapMode, Word, HEAP_BASE};
use tfgc_types::DataId;

/// A heap invariant violation found by a walker. Every variant carries
/// enough context (address, tracing origin) to localize the corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A traced pointer does not land in the current from-space — either
    /// out of heap bounds entirely or a to-space/forwarding address that
    /// survived a flip.
    NotInFromSpace { addr: u64, origin: String },
    /// An object's extent runs past the live span of from-space.
    OutOfBounds {
        addr: u64,
        size: usize,
        live_end: u64,
        origin: String,
    },
    /// The same address was reached with two different object sizes.
    SizeMismatch {
        addr: u64,
        expected: usize,
        found: usize,
    },
    /// Two reachable objects overlap.
    Overlap {
        addr: u64,
        size: usize,
        other: u64,
        other_size: usize,
    },
    /// A datatype discriminant names no variant (or a pointer was typed
    /// as an all-immediate datatype).
    BadDiscriminant {
        addr: u64,
        data: u32,
        found: u64,
        origin: String,
    },
    /// A closure's code-pointer word is not a valid function id.
    BadCodePointer {
        addr: u64,
        fn_word: u64,
        fn_count: usize,
        origin: String,
    },
    /// A descriptor word (frame slot or closure field) is not a valid
    /// descriptor-arena id.
    BadDescriptor {
        id: u64,
        arena_len: usize,
        origin: String,
    },
    /// A byte descriptor's `Param` index exceeds its environment.
    BadByteParam {
        index: u16,
        env_len: usize,
        origin: String,
    },
    /// A tenured object holds a pointer into the nursery. The
    /// generational design is barrier-free *because* this edge cannot
    /// exist (the heap is immutable and the nursery is younger than
    /// every tenured object); finding one after a collection means a
    /// minor mistraced.
    TenuredToNursery {
        from: u64,
        addr: u64,
        origin: String,
    },
    /// A frame is suspended at a site whose gc_word was omitted.
    MissingGcWord { site: u32 },
    /// A tagged object's header length word is implausible.
    BadHeader { addr: u64, len: u64, live_end: u64 },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotInFromSpace { addr, origin } => write!(
                f,
                "pointer {addr:#x} is not in from-space (out of bounds, or a \
                 to-space/forwarding address survived the flip) — reached tracing {origin}"
            ),
            VerifyError::OutOfBounds {
                addr,
                size,
                live_end,
                origin,
            } => write!(
                f,
                "object at {addr:#x} ({size} words) extends past the live span end \
                 {live_end:#x} — reached tracing {origin}"
            ),
            VerifyError::SizeMismatch {
                addr,
                expected,
                found,
            } => write!(
                f,
                "object at {addr:#x} reached with conflicting sizes {expected} and {found}"
            ),
            VerifyError::Overlap {
                addr,
                size,
                other,
                other_size,
            } => write!(
                f,
                "object at {addr:#x} ({size} words) overlaps object at {other:#x} \
                 ({other_size} words)"
            ),
            VerifyError::BadDiscriminant {
                addr,
                data,
                found,
                origin,
            } => write!(
                f,
                "discriminant {found} at address {addr:#x} matches no variant of \
                 datatype {data} — reached tracing {origin}"
            ),
            VerifyError::BadCodePointer {
                addr,
                fn_word,
                fn_count,
                origin,
            } => write!(
                f,
                "closure at {addr:#x} holds code pointer {fn_word} but the program has \
                 {fn_count} function(s) — reached tracing {origin}"
            ),
            VerifyError::BadDescriptor {
                id,
                arena_len,
                origin,
            } => write!(
                f,
                "descriptor word {id} exceeds the arena ({arena_len} descriptors) — \
                 reached tracing {origin}"
            ),
            VerifyError::BadByteParam {
                index,
                env_len,
                origin,
            } => write!(
                f,
                "byte descriptor parameter {index} exceeds its environment of {env_len} \
                 routine(s) — reached tracing {origin}"
            ),
            VerifyError::TenuredToNursery { from, addr, origin } => write!(
                f,
                "tenured object at {from:#x} holds pointer {addr:#x} into the nursery — \
                 the barrier-free invariant is violated — reached tracing {origin}"
            ),
            VerifyError::MissingGcWord { site } => write!(
                f,
                "frame suspended at site {site} whose gc_word was omitted"
            ),
            VerifyError::BadHeader {
                addr,
                len,
                live_end,
            } => write!(
                f,
                "tagged object at {addr:#x} has implausible header length {len} \
                 (live span ends at {live_end:#x})"
            ),
        }
    }
}

/// Summary of a successful verification walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Reachable objects visited.
    pub objects: u64,
    /// Reachable payload words visited.
    pub words: u64,
}

// ---------------------------------------------------------------------
// Typed (tag-free) walker
// ---------------------------------------------------------------------

/// A tracing type, mirroring the collector's internal `WTy`.
#[derive(Debug, Clone)]
enum VTy {
    Rt(RtVal),
    Bytes { pos: u32, env: Rc<Vec<VTy>> },
}

/// How the fields of a pending datatype object are typed.
#[derive(Debug, Clone)]
enum DataFields {
    /// Ground: per-variant field routines from the ground table.
    Ground(Rc<Vec<VariantRt>>),
    /// Evaluated: per-variant field templates under the instance's
    /// argument routines.
    Rt { d: DataId, args: Rc<Vec<RtVal>> },
    /// Interpreted: per-variant field descriptors under a byte
    /// environment.
    Bytes { d: DataId, env: Rc<Vec<VTy>> },
}

/// The pointer-object shapes a typed classification can request.
enum Shape {
    Tuple(Vec<VTy>),
    Data { d: DataId, fields: DataFields },
    Closure(RtVal),
}

/// A discovered object whose fields are still to be enumerated.
enum Resolved {
    Tuple(Vec<VTy>),
    Data {
        ctor: usize,
        rep: CtorRep,
        fields: DataFields,
    },
    Closure {
        fn_id: usize,
        arrow: RtVal,
    },
}

struct QueueItem {
    idx: u32,
    addr: Addr,
    resolved: Resolved,
    origin: EvalCx,
}

struct TypedWalker<'a> {
    prog: &'a IrProgram,
    heap: &'a Heap,
    descs: &'a DescArena,
    ground: &'a mut GroundTable,
    routines: &'a RoutineTable,
    pool: &'a BytePool,
    sxs: &'a SxTable,
    sites: &'a [SiteMeta],
    fns: &'a [FnGcMeta],
    globals_meta: &'a [Option<SxId>],
    data_variants: &'a [Vec<Vec<SxId>>],
    build: RtBuildStats,
    cur: EvalCx,
    /// Address of the object whose fields are being enumerated (`None`
    /// while walking roots) — the source end of the tenured→nursery
    /// edge check.
    container: Option<Addr>,
    visited: HashMap<u64, u32>,
    extents: BTreeMap<u64, usize>,
    sizes: Vec<usize>,
    queue: VecDeque<QueueItem>,
    out: CanonHeap,
}

impl<'a> TypedWalker<'a> {
    fn new(
        meta: &'a mut GcMeta,
        prog: &'a IrProgram,
        heap: &'a Heap,
        descs: &'a DescArena,
    ) -> TypedWalker<'a> {
        assert_ne!(
            meta.strategy,
            Strategy::Tagged,
            "typed walker requires a tag-free strategy"
        );
        let GcMeta {
            ground,
            routines,
            pool,
            sxs,
            sites,
            fns,
            globals,
            data_variants,
            ..
        } = meta;
        TypedWalker {
            prog,
            heap,
            descs,
            ground,
            routines,
            pool,
            sxs,
            sites,
            fns,
            globals_meta: globals,
            data_variants,
            build: RtBuildStats::default(),
            cur: EvalCx::None,
            container: None,
            visited: HashMap::new(),
            extents: BTreeMap::new(),
            sizes: Vec::new(),
            queue: VecDeque::new(),
            out: CanonHeap::default(),
        }
    }

    fn eval(&mut self, id: SxId, env: &[RtVal]) -> RtVal {
        eval_sx(self.sxs.get(id), env, &mut self.build, self.cur)
    }

    fn eval_at(&mut self, id: SxId, env: &[RtVal], cx: EvalCx) -> RtVal {
        eval_sx(self.sxs.get(id), env, &mut self.build, cx)
    }

    fn extract(&mut self, rt: &RtVal, path: &[u16], cx: EvalCx) -> RtVal {
        extract_path(rt, path, self.prog, self.ground, cx)
    }

    /// Descriptor word → routine, with an arena bounds check (the
    /// collector trusts the word; the verifier does not).
    fn desc_checked(&mut self, raw: Word, cx: EvalCx) -> Result<RtVal, VerifyError> {
        if raw >= self.descs.len() as u64 {
            return Err(VerifyError::BadDescriptor {
                id: raw,
                arena_len: self.descs.len(),
                origin: cx.to_string(),
            });
        }
        Ok(desc_to_rt(self.descs, DescId(raw as u32), &mut self.build))
    }

    // ---- roots --------------------------------------------------------

    fn walk_roots(&mut self, roots: &RootsView) -> Result<(), VerifyError> {
        let globals_meta = self.globals_meta;
        for (i, g) in globals_meta.iter().enumerate() {
            if let Some(sx) = g {
                self.cur = EvalCx::Global(i as u32);
                let rt = self.eval(*sx, &[]);
                let cw = self.classify(roots.globals[i], &VTy::Rt(rt))?;
                self.out.roots.push(cw);
            }
        }
        let mut operand_env: Vec<RtVal> = Vec::new();
        let mut operand_site = None;
        for (ti, sv) in roots.stacks.iter().enumerate() {
            let frames = walk_frames(sv.stack, sv.top_fp, sv.current_site, self.prog);
            let mut theta: Option<Vec<RtVal>> = None;
            let mut clos: Option<RtVal> = None;
            let mut env: Vec<RtVal> = Vec::new();
            for fr in frames.iter().rev() {
                self.cur = EvalCx::Frame {
                    fn_id: fr.fn_id.0,
                    site: fr.site.0,
                };
                env = self.frame_env(fr, sv.stack, theta.as_deref(), clos.as_ref())?;
                self.trace_frame(fr, &env, sv.stack)?;
                (theta, clos) = self.eval_plan(fr.site, &env);
            }
            if ti == roots.operand_stack {
                operand_env = env;
                operand_site = Some(sv.current_site);
            }
        }
        if let Some(site) = operand_site {
            self.cur = EvalCx::Operands { site: site.0 };
            let sites = self.sites;
            let ops = &sites[site.0 as usize].operands;
            for (op, w) in ops.iter().zip(roots.operands.iter()) {
                if let Some(sx) = op {
                    let rt = self.eval(*sx, &operand_env);
                    let cw = self.classify(*w, &VTy::Rt(rt))?;
                    self.out.roots.push(cw);
                }
            }
        }
        Ok(())
    }

    fn frame_env(
        &mut self,
        fr: &FrameInfo,
        stack: &[Word],
        theta: Option<&[RtVal]>,
        clos: Option<&RtVal>,
    ) -> Result<Vec<RtVal>, VerifyError> {
        let fns = self.fns;
        let fm = &fns[fr.fn_id.0 as usize];
        let cx = EvalCx::Frame {
            fn_id: fr.fn_id.0,
            site: fr.site.0,
        };
        fm.frame_param_src
            .iter()
            .enumerate()
            .map(|(i, src)| {
                Ok(match src {
                    FrameParamSrc::Opaque => RtVal::Const,
                    FrameParamSrc::Theta => theta
                        .and_then(|t| t.get(i))
                        .cloned()
                        .unwrap_or(RtVal::Const),
                    FrameParamSrc::ArrowPath(p) => match clos {
                        Some(rt) => self.extract(rt, p, cx),
                        None => RtVal::Const,
                    },
                    FrameParamSrc::DescSlot(s) => {
                        let w = stack[fr.fp + FRAME_HDR + s.0 as usize];
                        self.desc_checked(w, cx)?
                    }
                })
            })
            .collect()
    }

    fn eval_plan(
        &mut self,
        site: CallSiteId,
        env: &[RtVal],
    ) -> (Option<Vec<RtVal>>, Option<RtVal>) {
        let sites = self.sites;
        match &sites[site.0 as usize].plan {
            CalleePlan::Direct { theta } => (
                Some(theta.iter().map(|sx| self.eval(*sx, env)).collect()),
                None,
            ),
            CalleePlan::Closure { clos_ty } => (None, Some(self.eval(*clos_ty, env))),
            CalleePlan::None => (None, None),
        }
    }

    fn trace_frame(
        &mut self,
        fr: &FrameInfo,
        env: &[RtVal],
        stack: &[Word],
    ) -> Result<(), VerifyError> {
        let sites = self.sites;
        let rid = sites[fr.site.0 as usize]
            .routine
            .ok_or(VerifyError::MissingGcWord { site: fr.site.0 })?;
        let routines = self.routines;
        let ops = &routines.routine(rid).ops;
        for op in ops {
            let cw = match *op {
                TraceOp::Slot { slot, sx } => {
                    let rt = self.eval(sx, env);
                    let w = stack[fr.fp + FRAME_HDR + slot.0 as usize];
                    self.classify(w, &VTy::Rt(rt))?
                }
                TraceOp::SlotBytes { slot, pos } => {
                    let benv: Rc<Vec<VTy>> = Rc::new(env.iter().cloned().map(VTy::Rt).collect());
                    let w = stack[fr.fp + FRAME_HDR + slot.0 as usize];
                    self.classify(w, &VTy::Bytes { pos, env: benv })?
                }
            };
            self.out.roots.push(cw);
        }
        Ok(())
    }

    // ---- values -------------------------------------------------------

    /// Classifies one word under a tracing type: a decoded immediate, or
    /// a reference to a (newly discovered or already visited) object.
    fn classify(&mut self, w: Word, ty: &VTy) -> Result<CanonWord, VerifyError> {
        match ty {
            VTy::Rt(RtVal::Const) => Ok(CanonWord::Imm(w as i64)),
            VTy::Rt(RtVal::Ground(id)) => {
                let rt = self.ground.rt(*id).clone();
                match rt {
                    TypeRt::Prim => Ok(CanonWord::Imm(w as i64)),
                    TypeRt::Tuple(fields) => {
                        let ftys = fields.iter().map(|f| VTy::Rt(RtVal::Ground(*f))).collect();
                        self.object(w, Shape::Tuple(ftys))
                    }
                    TypeRt::Data { data, variants } => self.object(
                        w,
                        Shape::Data {
                            d: data,
                            fields: DataFields::Ground(variants),
                        },
                    ),
                    TypeRt::Arrow(_) => self.object(w, Shape::Closure(RtVal::Ground(*id))),
                }
            }
            VTy::Rt(RtVal::Tuple(fields)) => {
                let ftys = fields.iter().cloned().map(VTy::Rt).collect();
                self.object(w, Shape::Tuple(ftys))
            }
            VTy::Rt(RtVal::Data(d, args)) => self.object(
                w,
                Shape::Data {
                    d: *d,
                    fields: DataFields::Rt {
                        d: *d,
                        args: args.clone(),
                    },
                },
            ),
            VTy::Rt(rt @ RtVal::Arrow(_, _)) => self.object(w, Shape::Closure(rt.clone())),
            VTy::Bytes { pos, env } => {
                let env = env.clone();
                let mut br = 0u64;
                match self.pool.parse(*pos, &mut br) {
                    DescView::Prim => Ok(CanonWord::Imm(w as i64)),
                    DescView::Param(i) => {
                        let sub = env.get(i as usize).cloned().ok_or_else(|| {
                            VerifyError::BadByteParam {
                                index: i,
                                env_len: env.len(),
                                origin: self.cur.to_string(),
                            }
                        })?;
                        self.classify(w, &sub)
                    }
                    DescView::Tuple(fields) => {
                        let ftys = fields
                            .iter()
                            .map(|p| VTy::Bytes {
                                pos: *p,
                                env: env.clone(),
                            })
                            .collect();
                        self.object(w, Shape::Tuple(ftys))
                    }
                    DescView::Data(d, arg_positions) => {
                        let arg_env: Rc<Vec<VTy>> = Rc::new(
                            arg_positions
                                .iter()
                                .map(|p| self.collapse(*p, &env))
                                .collect::<Result<_, _>>()?,
                        );
                        self.object(
                            w,
                            Shape::Data {
                                d,
                                fields: DataFields::Bytes { d, env: arg_env },
                            },
                        )
                    }
                    DescView::Arrow(a, b) => {
                        let ra = self.vty_to_rt(&VTy::Bytes {
                            pos: a,
                            env: env.clone(),
                        })?;
                        let rb = self.vty_to_rt(&VTy::Bytes { pos: b, env })?;
                        self.object(w, Shape::Closure(RtVal::Arrow(Rc::new(ra), Rc::new(rb))))
                    }
                }
            }
        }
    }

    /// Collapses `Param` indirection chains (mirrors the collector — see
    /// its `collapse` for why this must be eager).
    fn collapse(&mut self, pos: u32, env: &Rc<Vec<VTy>>) -> Result<VTy, VerifyError> {
        let mut pos = pos;
        let mut env = env.clone();
        let mut br = 0u64;
        loop {
            match self.pool.parse(pos, &mut br) {
                DescView::Param(i) => {
                    let sub =
                        env.get(i as usize)
                            .cloned()
                            .ok_or_else(|| VerifyError::BadByteParam {
                                index: i,
                                env_len: env.len(),
                                origin: self.cur.to_string(),
                            })?;
                    match sub {
                        VTy::Bytes { pos: p, env: e } => {
                            pos = p;
                            env = e;
                        }
                        rt => return Ok(rt),
                    }
                }
                _ => return Ok(VTy::Bytes { pos, env }),
            }
        }
    }

    fn vty_to_rt(&mut self, ty: &VTy) -> Result<RtVal, VerifyError> {
        match ty {
            VTy::Rt(rt) => Ok(rt.clone()),
            VTy::Bytes { pos, env } => {
                let env = env.clone();
                let mut br = 0u64;
                match self.pool.parse(*pos, &mut br) {
                    DescView::Prim => Ok(RtVal::Const),
                    DescView::Param(i) => {
                        let sub = env.get(i as usize).cloned().ok_or_else(|| {
                            VerifyError::BadByteParam {
                                index: i,
                                env_len: env.len(),
                                origin: self.cur.to_string(),
                            }
                        })?;
                        self.vty_to_rt(&sub)
                    }
                    DescView::Tuple(fields) => {
                        let fs = fields
                            .iter()
                            .map(|p| {
                                self.vty_to_rt(&VTy::Bytes {
                                    pos: *p,
                                    env: env.clone(),
                                })
                            })
                            .collect::<Result<_, _>>()?;
                        Ok(RtVal::Tuple(Rc::new(fs)))
                    }
                    DescView::Data(d, args) => {
                        let xs = args
                            .iter()
                            .map(|p| {
                                self.vty_to_rt(&VTy::Bytes {
                                    pos: *p,
                                    env: env.clone(),
                                })
                            })
                            .collect::<Result<_, _>>()?;
                        Ok(RtVal::Data(d, Rc::new(xs)))
                    }
                    DescView::Arrow(a, b) => {
                        let ra = self.vty_to_rt(&VTy::Bytes {
                            pos: a,
                            env: env.clone(),
                        })?;
                        let rb = self.vty_to_rt(&VTy::Bytes { pos: b, env })?;
                        Ok(RtVal::Arrow(Rc::new(ra), Rc::new(rb)))
                    }
                }
            }
        }
    }

    /// Admits one pointer object: bounds/overlap checks, dedup, queueing.
    fn object(&mut self, w: Word, shape: Shape) -> Result<CanonWord, VerifyError> {
        if w < HEAP_BASE {
            return Ok(CanonWord::Imm(w as i64));
        }
        let a = Addr(w);
        // `span_of` admits exactly the regions a surviving pointer may
        // land in: tenured from-space, the eden prefix, or the occupied
        // survivor half of a generational nursery.
        let Some((_, live_end)) = self.heap.span_of(a) else {
            return Err(VerifyError::NotInFromSpace {
                addr: w,
                origin: self.cur.to_string(),
            });
        };
        if let Some(c) = self.container {
            if self.heap.in_nursery(a) && !self.heap.in_nursery(c) {
                return Err(VerifyError::TenuredToNursery {
                    from: c.0,
                    addr: w,
                    origin: self.cur.to_string(),
                });
            }
        }
        let (size, resolved) = match shape {
            Shape::Tuple(ftys) => (ftys.len(), Resolved::Tuple(ftys)),
            Shape::Data { d, fields } => {
                let (ctor, rep) = self.resolve_ctor(a, w, d)?;
                (rep.heap_words(), Resolved::Data { ctor, rep, fields })
            }
            Shape::Closure(arrow) => {
                let fw = self.heap.read(a, 0);
                if fw >= self.fns.len() as u64 {
                    return Err(VerifyError::BadCodePointer {
                        addr: w,
                        fn_word: fw,
                        fn_count: self.fns.len(),
                        origin: self.cur.to_string(),
                    });
                }
                (
                    self.fns[fw as usize].closure_size as usize,
                    Resolved::Closure {
                        fn_id: fw as usize,
                        arrow,
                    },
                )
            }
        };
        if let Some(&idx) = self.visited.get(&a.0) {
            let known = self.sizes[idx as usize];
            if known != size {
                return Err(VerifyError::SizeMismatch {
                    addr: a.0,
                    expected: known,
                    found: size,
                });
            }
            return Ok(CanonWord::Ref(idx));
        }
        if a.0 + size as u64 > live_end {
            return Err(VerifyError::OutOfBounds {
                addr: a.0,
                size,
                live_end,
                origin: self.cur.to_string(),
            });
        }
        check_overlap(&self.extents, a.0, size)?;
        let idx = self.out.objects.len() as u32;
        self.out.objects.push(CanonObj::default());
        self.sizes.push(size);
        self.visited.insert(a.0, idx);
        self.extents.insert(a.0, size);
        self.queue.push_back(QueueItem {
            idx,
            addr: a,
            resolved,
            origin: self.cur,
        });
        Ok(CanonWord::Ref(idx))
    }

    fn resolve_ctor(
        &mut self,
        a: Addr,
        w: Word,
        d: DataId,
    ) -> Result<(usize, CtorRep), VerifyError> {
        let prog = self.prog;
        let reps = &prog.ctor_reps[d.0 as usize];
        let ctor = if reps
            .iter()
            .any(|r| matches!(r, CtorRep::Ptr { tag: Some(_), .. }))
        {
            let t = self.heap.read(a, 0) as u32;
            reps.iter()
                .position(|r| matches!(r, CtorRep::Ptr { tag: Some(tag), .. } if tag == &t))
                .ok_or_else(|| VerifyError::BadDiscriminant {
                    addr: a.0,
                    data: d.0,
                    found: self.heap.read(a, 0),
                    origin: self.cur.to_string(),
                })?
        } else {
            reps.iter()
                .position(|r| matches!(r, CtorRep::Ptr { .. }))
                .ok_or_else(|| VerifyError::BadDiscriminant {
                    addr: a.0,
                    data: d.0,
                    found: w,
                    origin: self.cur.to_string(),
                })?
        };
        Ok((ctor, reps[ctor]))
    }

    fn drain(&mut self) -> Result<(), VerifyError> {
        while let Some(item) = self.queue.pop_front() {
            self.cur = item.origin;
            let addr = item.addr;
            self.container = Some(addr);
            let fields = match item.resolved {
                Resolved::Tuple(ftys) => {
                    let mut out = Vec::with_capacity(ftys.len());
                    for (i, fty) in ftys.iter().enumerate() {
                        let w = self.heap.read(addr, i as u16);
                        out.push(self.classify(w, fty)?);
                    }
                    out
                }
                Resolved::Data { ctor, rep, fields } => {
                    let size = rep.heap_words();
                    let mut out = vec![CanonWord::Imm(0); size];
                    if matches!(rep, CtorRep::Ptr { tag: Some(_), .. }) {
                        out[0] = CanonWord::Imm(self.heap.read(addr, 0) as i64);
                    }
                    let ftys: Vec<VTy> = match &fields {
                        DataFields::Ground(variants) => variants[ctor]
                            .fields
                            .iter()
                            .map(|f| VTy::Rt(RtVal::Ground(*f)))
                            .collect(),
                        DataFields::Rt { d, args } => {
                            let dv = self.data_variants;
                            let templates = &dv[d.0 as usize][ctor];
                            let args = args.clone();
                            let cx = EvalCx::Data(d.0);
                            templates
                                .iter()
                                .map(|sx| VTy::Rt(self.eval_at(*sx, &args, cx)))
                                .collect()
                        }
                        DataFields::Bytes { d, env } => {
                            let pool = self.pool;
                            pool.data_fields[d.0 as usize][ctor]
                                .iter()
                                .map(|p| VTy::Bytes {
                                    pos: *p,
                                    env: env.clone(),
                                })
                                .collect()
                        }
                    };
                    for (i, fty) in ftys.iter().enumerate() {
                        let off = rep.field_offset(i as u16);
                        let w = self.heap.read(addr, off);
                        out[off as usize] = self.classify(w, fty)?;
                    }
                    out
                }
                Resolved::Closure { fn_id, arrow } => {
                    let fns = self.fns;
                    let fm = &fns[fn_id];
                    let size = fm.closure_size as usize;
                    let cx = EvalCx::Closure {
                        fn_id: fn_id as u32,
                    };
                    let mut env: Vec<RtVal> = Vec::with_capacity(fm.closure_param_src.len());
                    for src in &fm.closure_param_src {
                        let rt = match src {
                            ClosParamSrc::Opaque => RtVal::Const,
                            ClosParamSrc::Path(p) => self.extract(&arrow, p, cx),
                            ClosParamSrc::DescField(off) => {
                                let dw = self.heap.read(addr, *off);
                                self.desc_checked(dw, cx)?
                            }
                        };
                        env.push(rt);
                    }
                    let mut typed: Vec<Option<RtVal>> = vec![None; size];
                    for (off, sx) in &fm.closure_fields {
                        typed[*off as usize] = Some(self.eval_at(*sx, &env, cx));
                    }
                    let mut out = Vec::with_capacity(size);
                    out.push(CanonWord::Imm(fn_id as i64));
                    for (off, slot) in typed.iter().enumerate().skip(1) {
                        let w = self.heap.read(addr, off as u16);
                        out.push(match slot {
                            Some(rt) => self.classify(w, &VTy::Rt(rt.clone()))?,
                            // Untraced capture words (primitives, opaque
                            // descriptor ids) are payload in both
                            // encodings: decode raw.
                            None => CanonWord::Imm(w as i64),
                        });
                    }
                    out
                }
            };
            self.out.objects[item.idx as usize].fields = fields;
        }
        Ok(())
    }
}

/// Shared overlap check against previously admitted extents.
fn check_overlap(
    extents: &BTreeMap<u64, usize>,
    addr: u64,
    size: usize,
) -> Result<(), VerifyError> {
    if let Some((&pa, &ps)) = extents.range(..=addr).next_back() {
        if pa + ps as u64 > addr {
            return Err(VerifyError::Overlap {
                addr,
                size,
                other: pa,
                other_size: ps,
            });
        }
    }
    if let Some((&na, &ns)) = extents.range(addr + 1..).next() {
        if addr + size as u64 > na {
            return Err(VerifyError::Overlap {
                addr,
                size,
                other: na,
                other_size: ns,
            });
        }
    }
    Ok(())
}

/// Walks the reachable graph of a tag-free heap from the collector's own
/// roots, returning a canonical snapshot. Fails on any heap-invariant
/// violation. `meta` is only mutated through its ground-type table
/// (Figure-3 extraction may intern new ground routines).
pub fn snapshot_tagfree(
    meta: &mut GcMeta,
    prog: &IrProgram,
    heap: &Heap,
    descs: &DescArena,
    roots: &RootsView,
) -> Result<CanonHeap, VerifyError> {
    let mut w = TypedWalker::new(meta, prog, heap, descs);
    w.walk_roots(roots)?;
    w.drain()?;
    Ok(w.out)
}

/// Post-collection heap verification for tag-free strategies: the
/// snapshot walk with the canonical output discarded.
pub fn verify_tagfree(
    meta: &mut GcMeta,
    prog: &IrProgram,
    heap: &Heap,
    descs: &DescArena,
    roots: &RootsView,
) -> Result<VerifyReport, VerifyError> {
    let h = snapshot_tagfree(meta, prog, heap, descs, roots)?;
    Ok(VerifyReport {
        objects: h.objects.len() as u64,
        words: h.words(),
    })
}

// ---------------------------------------------------------------------
// Tagged walker
// ---------------------------------------------------------------------

struct TaggedWalker<'a> {
    prog: &'a IrProgram,
    heap: &'a Heap,
    enc: Encoding,
    /// Source object of the fields being enumerated (see `TypedWalker`).
    container: Option<Addr>,
    visited: HashMap<u64, u32>,
    extents: BTreeMap<u64, usize>,
    queue: VecDeque<(u32, Addr, usize)>,
    out: CanonHeap,
}

impl<'a> TaggedWalker<'a> {
    fn new(prog: &'a IrProgram, heap: &'a Heap) -> TaggedWalker<'a> {
        TaggedWalker {
            prog,
            heap,
            enc: Encoding::new(HeapMode::Tagged),
            container: None,
            visited: HashMap::new(),
            extents: BTreeMap::new(),
            queue: VecDeque::new(),
            out: CanonHeap::default(),
        }
    }

    fn classify(&mut self, w: Word) -> Result<CanonWord, VerifyError> {
        if !self.enc.is_tagged_ptr(w) {
            return Ok(CanonWord::Imm(self.enc.int_of(w)));
        }
        let a = self.enc.addr_of(w);
        let Some((_, live_end)) = self.heap.span_of(a) else {
            return Err(VerifyError::NotInFromSpace {
                addr: a.0,
                origin: "tagged walk".to_string(),
            });
        };
        if let Some(c) = self.container {
            if self.heap.in_nursery(a) && !self.heap.in_nursery(c) {
                return Err(VerifyError::TenuredToNursery {
                    from: c.0,
                    addr: a.0,
                    origin: "tagged walk".to_string(),
                });
            }
        }
        if let Some(&idx) = self.visited.get(&a.0) {
            return Ok(CanonWord::Ref(idx));
        }
        let len = self.heap.read(a, 0);
        if len >= (1 << 16) || a.0 + 1 + len > live_end {
            return Err(VerifyError::BadHeader {
                addr: a.0,
                len,
                live_end,
            });
        }
        check_overlap(&self.extents, a.0, len as usize + 1)?;
        let idx = self.out.objects.len() as u32;
        self.out.objects.push(CanonObj::default());
        self.visited.insert(a.0, idx);
        self.extents.insert(a.0, len as usize + 1);
        self.queue.push_back((idx, a, len as usize));
        Ok(CanonWord::Ref(idx))
    }

    fn drain(&mut self) -> Result<(), VerifyError> {
        while let Some((idx, a, len)) = self.queue.pop_front() {
            self.container = Some(a);
            let mut fields = Vec::with_capacity(len);
            for i in 0..len {
                let w = self.heap.read(a, (i + 1) as u16);
                fields.push(self.classify(w)?);
            }
            self.out.objects[idx as usize].fields = fields;
        }
        Ok(())
    }

    /// Roots restricted to the slots a tag-free strategy's metadata would
    /// trace (the differential-oracle root set).
    fn walk_roots_meta(&mut self, meta: &GcMeta, roots: &RootsView) -> Result<(), VerifyError> {
        for (i, g) in meta.globals.iter().enumerate() {
            if g.is_some() {
                let cw = self.classify(roots.globals[i])?;
                self.out.roots.push(cw);
            }
        }
        for sv in &roots.stacks {
            let frames = walk_frames(sv.stack, sv.top_fp, sv.current_site, self.prog);
            for fr in frames.iter().rev() {
                let rid = meta.sites[fr.site.0 as usize]
                    .routine
                    .ok_or(VerifyError::MissingGcWord { site: fr.site.0 })?;
                for op in &meta.routines.routine(rid).ops {
                    let slot = match op {
                        TraceOp::Slot { slot, .. } | TraceOp::SlotBytes { slot, .. } => *slot,
                    };
                    let cw = self.classify(sv.stack[fr.fp + FRAME_HDR + slot.0 as usize])?;
                    self.out.roots.push(cw);
                }
            }
        }
        if let Some(sv) = roots.stacks.get(roots.operand_stack) {
            let ops = &meta.sites[sv.current_site.0 as usize].operands;
            for (op, w) in ops.iter().zip(roots.operands.iter()) {
                if op.is_some() {
                    let cw = self.classify(*w)?;
                    self.out.roots.push(cw);
                }
            }
        }
        Ok(())
    }

    /// Every slot of every frame plus all globals and operands — exactly
    /// the root set `collect_tagged` traces.
    fn walk_roots_all(&mut self, roots: &RootsView) -> Result<(), VerifyError> {
        for w in roots.globals {
            let cw = self.classify(*w)?;
            self.out.roots.push(cw);
        }
        for sv in &roots.stacks {
            let frames = walk_frames(sv.stack, sv.top_fp, sv.current_site, self.prog);
            for fr in frames.iter().rev() {
                let slots = self.prog.fun(fr.fn_id).slots.len();
                for i in 0..slots {
                    let cw = self.classify(sv.stack[fr.fp + FRAME_HDR + i])?;
                    self.out.roots.push(cw);
                }
            }
        }
        for w in roots.operands {
            let cw = self.classify(*w)?;
            self.out.roots.push(cw);
        }
        Ok(())
    }
}

/// Walks a tagged heap from the root slots `root_meta` (a *tag-free*
/// strategy's metadata) would trace, using only tag bits and headers.
/// This is the oracle side of the differential check: same roots, no
/// type information.
pub fn snapshot_tagged(
    root_meta: &GcMeta,
    prog: &IrProgram,
    heap: &Heap,
    roots: &RootsView,
) -> Result<CanonHeap, VerifyError> {
    let mut w = TaggedWalker::new(prog, heap);
    w.walk_roots_meta(root_meta, roots)?;
    w.drain()?;
    Ok(w.out)
}

/// Post-collection heap verification for the tagged strategy: walk every
/// slot/global/operand by tags and headers, checking bounds and overlap.
pub fn verify_tagged(
    prog: &IrProgram,
    heap: &Heap,
    roots: &RootsView,
) -> Result<VerifyReport, VerifyError> {
    let mut w = TaggedWalker::new(prog, heap);
    w.walk_roots_all(roots)?;
    w.drain()?;
    Ok(VerifyReport {
        objects: w.out.objects.len() as u64,
        words: w.out.words(),
    })
}
