//! Structured-panic capture shared by the torture matrix and the fuzz
//! campaign workers.
//!
//! The robustness contract distinguishes two kinds of panic: a
//! *structured* fail-fast panic (one of [`crate::STRUCTURED_PANIC_PREFIXES`],
//! carrying site/seq/strategy context — an injected fault was *detected*)
//! and a *raw* panic (anything else — always a harness failure). Both
//! harnesses used to carry private copies of the payload-downcast and
//! classification logic; this module is the single shared implementation,
//! so a new panic shape only has to be taught to one place.

use std::panic::{catch_unwind, AssertUnwindSafe, UnwindSafe};

/// A panic caught by [`capture_panics`], classified and annotated with
/// the caller's case context.
#[derive(Debug, Clone)]
pub struct CapturedPanic {
    /// The panic payload rendered as text (`&str` and `String` payloads
    /// verbatim, anything else a placeholder).
    pub message: String,
    /// Does the payload start with a structured fail-fast prefix?
    pub structured: bool,
    /// Caller-supplied case context (workload, strategy, seed, …) so a
    /// report line can identify the failing case without re-running it.
    pub context: String,
}

impl CapturedPanic {
    /// `"<context>: <message>"` — the torture/fuzz report line.
    pub fn describe(&self) -> String {
        if self.context.is_empty() {
            self.message.clone()
        } else {
            format!("{}: {}", self.context, self.message)
        }
    }
}

/// Renders a panic payload as text: `&str` and `String` payloads come
/// through verbatim, anything else becomes a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f`, converting any panic into a classified [`CapturedPanic`]
/// with `context` attached. The caller decides what a structured vs raw
/// panic means for its contract; this only captures and classifies.
///
/// # Errors
///
/// The captured panic, when `f` panicked.
pub fn capture_panics<T>(
    context: &str,
    f: impl FnOnce() -> T + UnwindSafe,
) -> Result<T, CapturedPanic> {
    catch_unwind(f).map_err(|payload| {
        let message = panic_message(payload.as_ref());
        CapturedPanic {
            structured: crate::is_structured_panic(&message),
            message,
            context: context.to_string(),
        }
    })
}

/// [`capture_panics`] for closures over `&mut` state (the common shape in
/// both harnesses: the VM under test is built outside the closure). The
/// `AssertUnwindSafe` is sound for the harness use case because a panicked
/// case's state is discarded, never reused.
///
/// # Errors
///
/// The captured panic, when `f` panicked.
pub fn capture_panics_mut<T>(context: &str, f: impl FnOnce() -> T) -> Result<T, CapturedPanic> {
    capture_panics(context, AssertUnwindSafe(f))
}

/// Runs `f` with the global panic hook silenced (expected fail-fast cases
/// would otherwise spam stderr), restoring the previous hook afterwards.
/// Use around a whole matrix, not per case: the hook is process-global.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(prev_hook);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_pass_through() {
        let r = capture_panics("ctx", || 41 + 1);
        assert_eq!(r.unwrap(), 42);
    }

    #[test]
    fn raw_panics_are_classified_raw() {
        let r = with_quiet_panics(|| {
            capture_panics("churn / compiled / seed 3", || -> u32 {
                panic!("index out of bounds: the len is 4");
            })
        });
        let p = r.unwrap_err();
        assert!(!p.structured);
        assert!(p.message.contains("index out of bounds"));
        assert_eq!(
            p.describe(),
            "churn / compiled / seed 3: index out of bounds: the len is 4"
        );
    }

    #[test]
    fn structured_panics_are_classified_structured() {
        let r = with_quiet_panics(|| {
            capture_panics("case", || -> u32 {
                panic!("heap corruption: discriminant 99 at address 5000");
            })
        });
        let p = r.unwrap_err();
        assert!(p.structured);
    }

    #[test]
    fn string_payloads_come_through_verbatim() {
        let r = with_quiet_panics(|| {
            capture_panics("", || -> u32 {
                panic!("{}", String::from("owned payload"))
            })
        });
        let p = r.unwrap_err();
        assert_eq!(p.message, "owned payload");
        assert_eq!(p.describe(), "owned payload");
    }
}
