//! Grammar corner cases beyond the unit tests.

use tfgc_syntax::{parse_expr, parse_program, BinOp, ExprKind, PatKind};

#[test]
fn deeply_nested_parens() {
    let mut src = String::from("1");
    for _ in 0..64 {
        src = format!("({src})");
    }
    let e = parse_expr(&src).expect("nested parens parse");
    assert!(matches!(e.kind, ExprKind::Int(1)));
}

#[test]
fn nested_cases_bind_bars_to_innermost() {
    // The inner case swallows the second arm unless parenthesized.
    let e = parse_expr("case a of [] => case b of [] => 1 | _ :: _ => 2 | x :: _ => 3").unwrap();
    match e.kind {
        ExprKind::Case(_, arms) => {
            assert_eq!(arms.len(), 1, "outer case keeps one arm");
            match &arms[0].body.kind {
                ExprKind::Case(_, inner) => assert_eq!(inner.len(), 3),
                other => panic!("expected inner case, got {other:?}"),
            }
        }
        other => panic!("expected case, got {other:?}"),
    }
    // Parenthesized, the outer case keeps both arms.
    let e2 = parse_expr("case a of [] => (case b of [] => 1 | _ :: _ => 2) | x :: _ => 3").unwrap();
    match e2.kind {
        ExprKind::Case(_, arms) => assert_eq!(arms.len(), 2),
        other => panic!("expected case, got {other:?}"),
    }
}

#[test]
fn let_inside_let_and_shadowing() {
    let e = parse_expr("let val x = 1 in let val x = x + 1 in let val x = x * 2 in x end end end")
        .unwrap();
    assert!(matches!(e.kind, ExprKind::Let(_, _)));
}

#[test]
fn arithmetic_associativity_is_left() {
    let e = parse_expr("10 - 3 - 2").unwrap();
    match e.kind {
        ExprKind::BinOp(BinOp::Sub, lhs, _) => {
            assert!(matches!(lhs.kind, ExprKind::BinOp(BinOp::Sub, _, _)));
        }
        other => panic!("expected left-assoc sub, got {other:?}"),
    }
}

#[test]
fn unary_minus_binds_tighter_than_mul() {
    let e = parse_expr("~2 * 3").unwrap();
    assert!(matches!(e.kind, ExprKind::BinOp(BinOp::Mul, _, _)));
}

#[test]
fn application_of_parenthesized_lambda_chain() {
    let e = parse_expr("(fn x => fn y => x + y) 1 2").unwrap();
    // ((lambda 1) 2)
    match e.kind {
        ExprKind::App(f, _) => assert!(matches!(f.kind, ExprKind::App(_, _))),
        other => panic!("expected nested app, got {other:?}"),
    }
}

#[test]
fn cons_of_tuples() {
    let e = parse_expr("(1, 2) :: rest").unwrap();
    match e.kind {
        ExprKind::Cons(h, _) => assert!(matches!(h.kind, ExprKind::Tuple(_))),
        other => panic!("expected cons, got {other:?}"),
    }
}

#[test]
fn pattern_corner_cases() {
    let e = parse_expr("case x of (a, (b, c)) :: _ => a | _ => 0").unwrap();
    match e.kind {
        ExprKind::Case(_, arms) => match &arms[0].pat.kind {
            PatKind::Cons(h, _) => match &h.kind {
                PatKind::Tuple(ps) => assert!(matches!(ps[1].kind, PatKind::Tuple(_))),
                other => panic!("expected tuple pattern, got {other:?}"),
            },
            other => panic!("expected cons pattern, got {other:?}"),
        },
        other => panic!("expected case, got {other:?}"),
    }
}

#[test]
fn multi_clause_multi_param_desugars() {
    let p = parse_program(
        "fun zip [] _ = [] | zip _ [] = [] | zip (x :: xs) (y :: ys) = (x, y) :: zip xs ys ; 0",
    )
    .unwrap();
    let f = match &p.decls[0] {
        tfgc_syntax::Decl::Fun(g) => &g[0],
        other => panic!("expected fun, got {other:?}"),
    };
    assert_eq!(f.params.len(), 2);
    match &f.body.kind {
        ExprKind::Case(scrut, arms) => {
            assert!(matches!(scrut.kind, ExprKind::Tuple(_)));
            assert_eq!(arms.len(), 3);
        }
        other => panic!("expected case body, got {other:?}"),
    }
}

#[test]
fn seq_only_in_parens() {
    assert!(parse_expr("(1; 2; 3)").is_ok());
    // Bare `;` at expression top level is a parse error for parse_expr.
    assert!(parse_expr("1; 2").is_err());
}

#[test]
fn errors_report_positions() {
    let err = parse_program("fun f = 1 ; 0").unwrap_err();
    assert!(err.span.start > 0);
    let err2 = parse_expr("case x of").unwrap_err();
    assert!(err2.message.contains("pattern") || err2.message.contains("expression"));
}

#[test]
fn comment_between_tokens() {
    let e = parse_expr("1 (* one *) + (* plus *) 2").unwrap();
    assert!(matches!(e.kind, ExprKind::BinOp(BinOp::Add, _, _)));
}

#[test]
fn datatype_with_function_fields() {
    let p = parse_program("datatype t = F of int -> int ; 0").unwrap();
    match &p.decls[0] {
        tfgc_syntax::Decl::Datatype(dt) => {
            assert_eq!(dt.ctors[0].args.len(), 1);
            assert!(matches!(dt.ctors[0].args[0], tfgc_syntax::Ty::Arrow(_, _)));
        }
        other => panic!("expected datatype, got {other:?}"),
    }
}

#[test]
fn annotation_precedence() {
    // `x : int list` annotates the whole variable, not a sub-expression.
    let e = parse_expr("(xs : int list)").unwrap();
    assert!(matches!(e.kind, ExprKind::Ann(_, _)));
    // Annotation of an arithmetic expression.
    let e2 = parse_expr("(1 + 2 : int)").unwrap();
    assert!(matches!(e2.kind, ExprKind::Ann(_, _)));
}

#[test]
fn very_long_list_literal() {
    let items: Vec<String> = (0..500).map(|i| i.to_string()).collect();
    let src = format!("[{}]", items.join(", "));
    let e = parse_expr(&src).unwrap();
    match e.kind {
        ExprKind::List(es) => assert_eq!(es.len(), 500),
        other => panic!("expected list, got {other:?}"),
    }
}
