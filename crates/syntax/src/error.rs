//! Lexing and parsing errors.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing or parsing TFML source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the source the error occurred.
    pub span: Span,
    /// Human-readable description, lowercase, no trailing punctuation.
    pub message: String,
}

impl ParseError {
    /// Creates a new error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            span,
            message: message.into(),
        }
    }

    /// Renders the error with line/column information from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("parse error at {line}:{col}: {}", self.message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing functions.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line() {
        let err = ParseError::new(Span::new(3, 4), "unexpected token");
        assert_eq!(err.render("ab\ncd"), "parse error at 2:1: unexpected token");
    }

    #[test]
    fn display_is_nonempty() {
        let err = ParseError::new(Span::new(0, 1), "boom");
        assert!(err.to_string().contains("boom"));
    }
}
