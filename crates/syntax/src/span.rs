//! Source locations.
//!
//! Every token and AST node carries a [`Span`] (byte range into the source
//! text) so that type and lowering errors can point back at the program.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-width span at offset 0, for synthesized nodes.
    pub const SYNTH: Span = Span { start: 0, end: 0 };

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the span covers no characters.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Computes the 1-based line and column of the span start within `src`.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i as u32 >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(3, 7).len(), 4);
        assert!(Span::new(3, 3).is_empty());
        assert!(!Span::new(3, 4).is_empty());
    }
}
