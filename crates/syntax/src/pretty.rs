//! Pretty-printer for TFML ASTs.
//!
//! Primarily a debugging aid; the printer emits valid TFML, so
//! `parse(print(parse(src)))` is a useful round-trip property (exercised in
//! tests).

use crate::ast::*;
use std::fmt::Write as _;

/// Internal fresh names contain `#` (unlexable by design, so they cannot
/// collide with user names). The printer maps `#` to `'` — legal inside
/// identifiers — so printed programs re-lex.
fn ident(s: &str) -> String {
    s.replace('#', "'")
}

/// Renders a program as TFML source. Declarations are terminated with
/// `;` so the main expression never merges into the last declaration's
/// body (application is juxtaposition).
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        match d {
            Decl::Datatype(dt) => {
                out.push_str(&datatype_to_string(dt));
                out.push_str(" ;\n");
            }
            Decl::Fun(group) => {
                for (i, f) in group.iter().enumerate() {
                    let kw = if i == 0 { "fun" } else { "and" };
                    let params: Vec<String> = f.params.iter().map(|p| ident(p)).collect();
                    let _ = write!(
                        out,
                        "{kw} {} {} = {}",
                        ident(&f.name),
                        params.join(" "),
                        expr_to_string(&f.body)
                    );
                    out.push_str(if i + 1 == group.len() { " ;\n" } else { "\n" });
                }
            }
            Decl::Val(pat, e) => {
                let _ = writeln!(out, "val {} = {} ;", pat_to_string(pat), expr_to_string(e));
            }
        }
    }
    out.push_str(&expr_to_string(&p.main));
    out.push('\n');
    out
}

/// Renders a datatype declaration.
pub fn datatype_to_string(dt: &DatatypeDecl) -> String {
    let params = match dt.params.len() {
        0 => String::new(),
        1 => format!("'{} ", dt.params[0]),
        _ => format!(
            "({}) ",
            dt.params
                .iter()
                .map(|p| format!("'{p}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    };
    let ctors = dt
        .ctors
        .iter()
        .map(|c| {
            if c.args.is_empty() {
                c.name.clone()
            } else {
                format!(
                    "{} of {}",
                    c.name,
                    c.args
                        .iter()
                        .map(|t| ty_to_string_prec(t, 1))
                        .collect::<Vec<_>>()
                        .join(" * ")
                )
            }
        })
        .collect::<Vec<_>>()
        .join(" | ");
    format!("datatype {params}{} = {ctors}", dt.name)
}

/// Renders a type.
pub fn ty_to_string(t: &Ty) -> String {
    ty_to_string_prec(t, 0)
}

fn ty_to_string_prec(t: &Ty, prec: u8) -> String {
    match t {
        Ty::Var(v) => format!("'{v}"),
        Ty::Int => "int".into(),
        Ty::Bool => "bool".into(),
        Ty::Unit => "unit".into(),
        Ty::List(inner) => format!("{} list", ty_to_string_prec(inner, 2)),
        Ty::Tuple(ts) => {
            let s = ts
                .iter()
                .map(|t| ty_to_string_prec(t, 2))
                .collect::<Vec<_>>()
                .join(" * ");
            if prec >= 1 {
                format!("({s})")
            } else {
                s
            }
        }
        Ty::Arrow(a, b) => {
            let s = format!("{} -> {}", ty_to_string_prec(a, 1), ty_to_string_prec(b, 0));
            if prec >= 1 {
                format!("({s})")
            } else {
                s
            }
        }
        Ty::Named(n, args) => match args.len() {
            0 => n.clone(),
            1 => format!("{} {n}", ty_to_string_prec(&args[0], 2)),
            _ => format!(
                "({}) {n}",
                args.iter().map(ty_to_string).collect::<Vec<_>>().join(", ")
            ),
        },
    }
}

/// Renders a pattern.
pub fn pat_to_string(p: &Pat) -> String {
    match &p.kind {
        PatKind::Wild => "_".into(),
        PatKind::Var(v) => ident(v),
        PatKind::Int(n) => {
            if *n < 0 {
                format!("~{}", -n)
            } else {
                n.to_string()
            }
        }
        PatKind::Bool(b) => b.to_string(),
        PatKind::Unit => "()".into(),
        PatKind::Tuple(ps) => format!(
            "({})",
            ps.iter().map(pat_to_string).collect::<Vec<_>>().join(", ")
        ),
        PatKind::Ctor(name, None) => name.clone(),
        PatKind::Ctor(name, Some(arg)) => format!("{name} {}", pat_atom(arg)),
        PatKind::Nil => "[]".into(),
        PatKind::Cons(h, t) => format!("{} :: {}", pat_atom(h), pat_to_string(t)),
        PatKind::Ascribe(p, ty) => format!("({} : {})", pat_to_string(p), ty_to_string(ty)),
    }
}

fn pat_atom(p: &Pat) -> String {
    match &p.kind {
        PatKind::Cons(_, _) | PatKind::Ctor(_, Some(_)) => format!("({})", pat_to_string(p)),
        _ => pat_to_string(p),
    }
}

/// Renders an expression.
pub fn expr_to_string(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(n) => {
            if *n < 0 {
                format!("~{}", -n)
            } else {
                n.to_string()
            }
        }
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Unit => "()".into(),
        ExprKind::Var(v) => ident(v),
        ExprKind::Ctor(c) => c.clone(),
        ExprKind::Tuple(es) => format!(
            "({})",
            es.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
        ),
        ExprKind::List(es) => format!(
            "[{}]",
            es.iter().map(expr_to_string).collect::<Vec<_>>().join(", ")
        ),
        ExprKind::App(f, x) => format!("{} {}", atom(f), atom(x)),
        ExprKind::BinOp(op, a, b) => {
            format!("({} {} {})", guard(a), op.symbol(), guard(b))
        }
        ExprKind::UnOp(UnOp::Neg, a) => format!("~{}", atom(a)),
        ExprKind::UnOp(UnOp::Not, a) => format!("not {}", atom(a)),
        ExprKind::Cons(h, t) => format!("({} :: {})", guard(h), guard(t)),
        ExprKind::If(c, t, f) => format!(
            "if {} then {} else {}",
            guard(c),
            expr_to_string(t),
            expr_to_string(f)
        ),
        ExprKind::Lambda(x, b) => format!("fn {} => {}", ident(x), expr_to_string(b)),
        ExprKind::Let(binds, body) => {
            let mut s = String::from("let ");
            for b in binds {
                match b {
                    LetBind::Val(p, e) => {
                        let _ = write!(s, "val {} = {} ", pat_to_string(p), expr_to_string(e));
                    }
                    LetBind::Fun(group) => {
                        for (i, f) in group.iter().enumerate() {
                            let kw = if i == 0 { "fun" } else { "and" };
                            let params: Vec<String> = f.params.iter().map(|p| ident(p)).collect();
                            let _ = write!(
                                s,
                                "{kw} {} {} = {} ",
                                ident(&f.name),
                                params.join(" "),
                                expr_to_string(&f.body)
                            );
                        }
                    }
                }
            }
            let _ = write!(s, "in {} end", expr_to_string(body));
            s
        }
        ExprKind::Case(scrut, arms) => {
            let arms_s = arms
                .iter()
                .map(|a| format!("{} => {}", pat_to_string(&a.pat), expr_to_string(&a.body)))
                .collect::<Vec<_>>()
                .join(" | ");
            format!("(case {} of {arms_s})", expr_to_string(scrut))
        }
        ExprKind::Ann(inner, ty) => format!("({} : {})", expr_to_string(inner), ty_to_string(ty)),
        ExprKind::Seq(a, b) => format!("({}; {})", expr_to_string(a), expr_to_string(b)),
    }
}

/// Wraps expressions the operand grammar cannot start with (`if`, `fn`,
/// `let`) so they can appear as operator operands on reparse: `if`/`fn`
/// would absorb the rest of the expression, and `let ... end` is only
/// parsed at expression level, never as a bare operand.
fn guard(e: &Expr) -> String {
    match &e.kind {
        ExprKind::If(_, _, _) | ExprKind::Lambda(_, _) | ExprKind::Let(_, _) => {
            format!("({})", expr_to_string(e))
        }
        _ => expr_to_string(e),
    }
}

fn atom(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(n) if *n >= 0 => n.to_string(),
        ExprKind::Bool(_)
        | ExprKind::Unit
        | ExprKind::Var(_)
        | ExprKind::Ctor(_)
        | ExprKind::Tuple(_)
        | ExprKind::List(_) => expr_to_string(e),
        _ => format!("({})", expr_to_string(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn roundtrip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = expr_to_string(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        // Spans differ; compare printed forms instead.
        assert_eq!(printed, expr_to_string(&e2));
    }

    #[test]
    fn roundtrips_simple_exprs() {
        roundtrip_expr("1 + 2 * 3");
        roundtrip_expr("if a then b else c");
        roundtrip_expr("fn x => x :: [1, 2]");
        roundtrip_expr("let val x = 1 in x end");
        roundtrip_expr("case xs of [] => 0 | x :: _ => x");
        roundtrip_expr("~5 + f 3");
    }

    #[test]
    fn roundtrips_let_in_operand_position() {
        roundtrip_expr("(let val x = 4 in x + 1 end) mod 7");
        roundtrip_expr("1 + (let val x = 2 in x end)");
        roundtrip_expr("(let val x = 2 in x end) :: []");
    }

    #[test]
    fn prints_program_with_datatype() {
        let src = "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree  Leaf";
        let p = parse_program(src).unwrap();
        let printed = program_to_string(&p);
        assert!(printed.contains("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree"));
        // The printed program reparses.
        parse_program(&printed).unwrap();
    }

    #[test]
    fn type_printing_has_expected_precedence() {
        assert_eq!(
            ty_to_string(&Ty::Arrow(
                Box::new(Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Bool))),
                Box::new(Ty::Int)
            )),
            "(int -> bool) -> int"
        );
        assert_eq!(
            ty_to_string(&Ty::List(Box::new(Ty::Tuple(vec![Ty::Int, Ty::Bool])))),
            "(int * bool) list"
        );
    }
}
