//! Hand-written lexer for TFML.
//!
//! TFML is the mini-ML used throughout the reproduction: the surface
//! language of Goldberg's examples (`append`, `map`, the polymorphic `f`)
//! can be written verbatim modulo keyword spelling.

use crate::error::{ParseError, ParseResult};
use crate::span::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal (non-negative; negation is parsed as an operator).
    Int(i64),
    /// Lower-case identifier (variables, functions).
    Ident(String),
    /// Upper-case identifier (datatype constructors).
    UpperIdent(String),
    /// Type variable such as `'a`.
    TyVar(String),

    // Keywords.
    Let,
    In,
    End,
    Fun,
    Fn,
    Val,
    Rec,
    And,
    If,
    Then,
    Else,
    Case,
    Of,
    Datatype,
    True,
    False,
    Andalso,
    Orelse,
    Not,

    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Arrow,  // ->
    DArrow, // =>
    Bar,    // |
    Eq,     // =
    NotEq,  // <>
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash, // div (integer division)
    Mod,
    Cons,     // ::
    Wildcard, // _
    Colon,    // :
    Tilde,    // ~ unary negation
    Eof,
}

impl TokenKind {
    /// Short human-readable name used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::UpperIdent(s) => format!("constructor `{s}`"),
            TokenKind::TyVar(s) => format!("type variable `'{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Let => "let",
            TokenKind::In => "in",
            TokenKind::End => "end",
            TokenKind::Fun => "fun",
            TokenKind::Fn => "fn",
            TokenKind::Val => "val",
            TokenKind::Rec => "rec",
            TokenKind::And => "and",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::Case => "case",
            TokenKind::Of => "of",
            TokenKind::Datatype => "datatype",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Andalso => "andalso",
            TokenKind::Orelse => "orelse",
            TokenKind::Not => "not",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semicolon => ";",
            TokenKind::Arrow => "->",
            TokenKind::DArrow => "=>",
            TokenKind::Bar => "|",
            TokenKind::Eq => "=",
            TokenKind::NotEq => "<>",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "div",
            TokenKind::Mod => "mod",
            TokenKind::Cons => "::",
            TokenKind::Wildcard => "_",
            TokenKind::Colon => ":",
            TokenKind::Tilde => "~",
            _ => unreachable!("lexeme called on data-carrying token"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Lexes `src` into a token stream ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> ParseResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> ParseResult<Vec<Token>> {
        while self.pos < self.bytes.len() {
            self.skip_trivia()?;
            if self.pos >= self.bytes.len() {
                break;
            }
            self.next_token()?;
        }
        let end = self.src.len() as u32;
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.tokens)
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.bytes.get(self.pos + 1).copied().unwrap_or(0)
    }

    /// Skips whitespace and `(* ... *)` comments (which may nest).
    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            while self.pos < self.bytes.len() && self.peek().is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.peek() == b'(' && self.peek2() == b'*' {
                let start = self.pos as u32;
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    if self.pos >= self.bytes.len() {
                        return Err(ParseError::new(
                            Span::new(start, self.src.len() as u32),
                            "unterminated comment",
                        ));
                    }
                    if self.peek() == b'(' && self.peek2() == b'*' {
                        depth += 1;
                        self.pos += 2;
                    } else if self.peek() == b'*' && self.peek2() == b')' {
                        depth -= 1;
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn next_token(&mut self) -> ParseResult<()> {
        let start = self.pos;
        let c = self.peek();
        match c {
            b'0'..=b'9' => {
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                let value: i64 = text.parse().map_err(|_| {
                    ParseError::new(
                        Span::new(start as u32, self.pos as u32),
                        format!("integer literal `{text}` out of range"),
                    )
                })?;
                self.emit(TokenKind::Int(value), start);
            }
            b'a'..=b'z' => {
                while self.peek().is_ascii_alphanumeric()
                    || self.peek() == b'_'
                    || self.peek() == b'\''
                {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                let kind = match text {
                    "let" => TokenKind::Let,
                    "in" => TokenKind::In,
                    "end" => TokenKind::End,
                    "fun" => TokenKind::Fun,
                    "fn" => TokenKind::Fn,
                    "val" => TokenKind::Val,
                    "rec" => TokenKind::Rec,
                    "and" => TokenKind::And,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "case" => TokenKind::Case,
                    "of" => TokenKind::Of,
                    "datatype" => TokenKind::Datatype,
                    "true" => TokenKind::True,
                    "false" => TokenKind::False,
                    "andalso" => TokenKind::Andalso,
                    "orelse" => TokenKind::Orelse,
                    "not" => TokenKind::Not,
                    "div" => TokenKind::Slash,
                    "mod" => TokenKind::Mod,
                    _ => TokenKind::Ident(text.to_string()),
                };
                self.emit(kind, start);
            }
            b'A'..=b'Z' => {
                while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                self.emit(TokenKind::UpperIdent(text.to_string()), start);
            }
            b'\'' => {
                self.pos += 1;
                let name_start = self.pos;
                while self.peek().is_ascii_alphanumeric() {
                    self.pos += 1;
                }
                if name_start == self.pos {
                    return Err(ParseError::new(
                        Span::new(start as u32, self.pos as u32),
                        "expected type variable name after `'`",
                    ));
                }
                let name = self.src[name_start..self.pos].to_string();
                self.emit(TokenKind::TyVar(name), start);
            }
            b'(' => {
                self.pos += 1;
                self.emit(TokenKind::LParen, start);
            }
            b')' => {
                self.pos += 1;
                self.emit(TokenKind::RParen, start);
            }
            b'[' => {
                self.pos += 1;
                self.emit(TokenKind::LBracket, start);
            }
            b']' => {
                self.pos += 1;
                self.emit(TokenKind::RBracket, start);
            }
            b',' => {
                self.pos += 1;
                self.emit(TokenKind::Comma, start);
            }
            b';' => {
                self.pos += 1;
                self.emit(TokenKind::Semicolon, start);
            }
            b'_' => {
                self.pos += 1;
                self.emit(TokenKind::Wildcard, start);
            }
            b'|' => {
                self.pos += 1;
                self.emit(TokenKind::Bar, start);
            }
            b'~' => {
                self.pos += 1;
                self.emit(TokenKind::Tilde, start);
            }
            b'+' => {
                self.pos += 1;
                self.emit(TokenKind::Plus, start);
            }
            b'*' => {
                self.pos += 1;
                self.emit(TokenKind::Star, start);
            }
            b'-' => {
                self.pos += 1;
                if self.peek() == b'>' {
                    self.pos += 1;
                    self.emit(TokenKind::Arrow, start);
                } else {
                    self.emit(TokenKind::Minus, start);
                }
            }
            b'=' => {
                self.pos += 1;
                if self.peek() == b'>' {
                    self.pos += 1;
                    self.emit(TokenKind::DArrow, start);
                } else {
                    self.emit(TokenKind::Eq, start);
                }
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    b'>' => {
                        self.pos += 1;
                        self.emit(TokenKind::NotEq, start);
                    }
                    b'=' => {
                        self.pos += 1;
                        self.emit(TokenKind::Le, start);
                    }
                    _ => self.emit(TokenKind::Lt, start),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == b'=' {
                    self.pos += 1;
                    self.emit(TokenKind::Ge, start);
                } else {
                    self.emit(TokenKind::Gt, start);
                }
            }
            b':' => {
                self.pos += 1;
                if self.peek() == b':' {
                    self.pos += 1;
                    self.emit(TokenKind::Cons, start);
                } else {
                    self.emit(TokenKind::Colon, start);
                }
            }
            other => {
                return Err(ParseError::new(
                    Span::new(start as u32, start as u32 + 1),
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fun append xs ys"),
            vec![
                TokenKind::Fun,
                TokenKind::Ident("append".into()),
                TokenKind::Ident("xs".into()),
                TokenKind::Ident("ys".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("x :: xs <> [] => ->"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Cons,
                TokenKind::Ident("xs".into()),
                TokenKind::NotEq,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::DArrow,
                TokenKind::Arrow,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_comparisons() {
        assert_eq!(
            kinds("< <= > >= ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(
            kinds("0 42 123456789"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(123456789),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_out_of_range_integer() {
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn skips_nested_comments() {
        assert_eq!(
            kinds("1 (* outer (* inner *) still *) 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn lexes_type_variables() {
        assert_eq!(
            kinds("'a 'b2"),
            vec![
                TokenKind::TyVar("a".into()),
                TokenKind::TyVar("b2".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn upper_idents_are_constructors() {
        assert_eq!(
            kinds("Leaf Node"),
            vec![
                TokenKind::UpperIdent("Leaf".into()),
                TokenKind::UpperIdent("Node".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn div_and_mod_are_keywords() {
        assert_eq!(
            kinds("a div b mod c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
                TokenKind::Mod,
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a ? b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("let x").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 5));
    }
}
