//! Abstract syntax for TFML.
//!
//! TFML is a monomorphic-or-polymorphic mini-ML: integers, booleans, unit,
//! tuples, lists, user datatypes (Goldberg §2.3's variant records),
//! first-class functions (§2.2's closures), `let`-polymorphism (§3).
//!
//! Clausal `fun` definitions (`fun append [] ys = ys | append (x::xs) ys =
//! ...`) are desugared by the parser into a single body that `case`s over the
//! parameter tuple, so the AST here always has plain named parameters.

use crate::span::Span;

/// Surface type expressions (used by `datatype` declarations and optional
/// `e : ty` annotations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// A type variable such as `'a`.
    Var(String),
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// `t1 * t2 * ...` (arity ≥ 2)
    Tuple(Vec<Ty>),
    /// `t list`
    List(Box<Ty>),
    /// `t1 -> t2`
    Arrow(Box<Ty>, Box<Ty>),
    /// A named datatype applied to arguments, e.g. `(int, bool) pair`.
    Named(String, Vec<Ty>),
}

/// One constructor of a datatype: name plus argument types (empty for a
/// nullary constructor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorDecl {
    pub name: String,
    pub args: Vec<Ty>,
    pub span: Span,
}

/// A `datatype ('a, 'b) name = C1 of ty | C2 | ...` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatatypeDecl {
    pub name: String,
    pub params: Vec<String>,
    pub ctors: Vec<CtorDecl>,
    pub span: Span,
}

/// Pattern syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pat {
    pub kind: PatKind,
    pub span: Span,
}

/// The shape of a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatKind {
    /// `_`
    Wild,
    /// A variable binding.
    Var(String),
    /// Integer literal pattern.
    Int(i64),
    /// Boolean literal pattern.
    Bool(bool),
    /// `()`
    Unit,
    /// `(p1, p2, ...)` with arity ≥ 2.
    Tuple(Vec<Pat>),
    /// Constructor pattern `C` or `C p`.
    Ctor(String, Option<Box<Pat>>),
    /// `[]`
    Nil,
    /// `p :: p`
    Cons(Box<Pat>, Box<Pat>),
    /// `(p : ty)` — type-ascribed pattern.
    Ascribe(Box<Pat>, Ty),
}

impl Pat {
    /// Variables bound by this pattern, in left-to-right order.
    pub fn bound_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'p>(&'p self, out: &mut Vec<&'p str>) {
        match &self.kind {
            PatKind::Var(v) => out.push(v),
            PatKind::Tuple(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            PatKind::Ctor(_, Some(p)) => p.collect_vars(out),
            PatKind::Cons(h, t) => {
                h.collect_vars(out);
                t.collect_vars(out);
            }
            PatKind::Ascribe(p, _) => p.collect_vars(out),
            _ => {}
        }
    }

    /// True if the pattern matches any value without testing it.
    pub fn is_irrefutable_shallow(&self) -> bool {
        matches!(self.kind, PatKind::Wild | PatKind::Var(_) | PatKind::Unit)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuiting conjunction (desugared to `if` at lowering).
    And,
    /// Short-circuiting disjunction.
    Or,
}

impl BinOp {
    /// The operator's surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "andalso",
            BinOp::Or => "orelse",
        }
    }

    /// True for `+ - * div mod` (operand and result type `int`).
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// True for comparison operators producing `bool` from `int` operands.
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation (`~`).
    Neg,
    /// Boolean negation (`not`).
    Not,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// The shape of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    Int(i64),
    Bool(bool),
    Unit,
    /// Variable reference (may name a top-level function).
    Var(String),
    /// Constructor reference, possibly applied via [`ExprKind::App`].
    Ctor(String),
    /// `(e1, e2, ...)` with arity ≥ 2.
    Tuple(Vec<Expr>),
    /// `[e1, e2, ...]` — sugar for conses ending in nil.
    List(Vec<Expr>),
    /// Application `f x`.
    App(Box<Expr>, Box<Expr>),
    /// Binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    UnOp(UnOp, Box<Expr>),
    /// `x :: xs`
    Cons(Box<Expr>, Box<Expr>),
    /// `if c then t else f`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `fn x => e`
    Lambda(String, Box<Expr>),
    /// `let <binds> in e end`
    Let(Vec<LetBind>, Box<Expr>),
    /// `case e of p1 => e1 | ...`
    Case(Box<Expr>, Vec<Arm>),
    /// Type-annotated expression `e : ty`.
    Ann(Box<Expr>, Ty),
    /// `e1; e2` sequencing (value of `e1` discarded).
    Seq(Box<Expr>, Box<Expr>),
}

/// One `case` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arm {
    pub pat: Pat,
    pub body: Expr,
}

/// A binding inside `let ... in ... end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LetBind {
    /// `val p = e`
    Val(Pat, Expr),
    /// `fun f x y = e and g z = e'` (mutually recursive group).
    Fun(Vec<FunBind>),
}

/// A single (desugared) function binding: named parameters and one body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunBind {
    pub name: String,
    pub params: Vec<String>,
    pub body: Expr,
    pub span: Span,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    Datatype(DatatypeDecl),
    /// Mutually recursive top-level function group.
    Fun(Vec<FunBind>),
    /// Top-level value binding.
    Val(Pat, Expr),
}

/// A complete program: declarations followed by a main expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub decls: Vec<Decl>,
    pub main: Expr,
}

impl Program {
    /// Names of all top-level functions, in declaration order.
    pub fn fun_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for d in &self.decls {
            if let Decl::Fun(group) = d {
                for f in group {
                    names.push(f.name.as_str());
                }
            }
        }
        names
    }

    /// Looks up a top-level datatype declaration by name.
    pub fn datatype(&self, name: &str) -> Option<&DatatypeDecl> {
        self.decls.iter().find_map(|d| match d {
            Decl::Datatype(dt) if dt.name == name => Some(dt),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(kind: PatKind) -> Pat {
        Pat {
            kind,
            span: Span::SYNTH,
        }
    }

    #[test]
    fn bound_vars_in_order() {
        let p = pat(PatKind::Cons(
            Box::new(pat(PatKind::Var("x".into()))),
            Box::new(pat(PatKind::Tuple(vec![
                pat(PatKind::Var("y".into())),
                pat(PatKind::Wild),
                pat(PatKind::Var("z".into())),
            ]))),
        ));
        assert_eq!(p.bound_vars(), vec!["x", "y", "z"]);
    }

    #[test]
    fn irrefutable_shallow() {
        assert!(pat(PatKind::Wild).is_irrefutable_shallow());
        assert!(pat(PatKind::Var("v".into())).is_irrefutable_shallow());
        assert!(!pat(PatKind::Nil).is_irrefutable_shallow());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Add.is_arith());
        assert!(!BinOp::Add.is_compare());
        assert!(BinOp::Le.is_compare());
        assert!(!BinOp::And.is_arith());
        assert_eq!(BinOp::Mod.symbol(), "mod");
    }
}
