//! # tfgc-syntax — front end for TFML
//!
//! Lexer, parser, and AST for **TFML**, the mini-ML source language of the
//! tag-free garbage collection reproduction (Goldberg, PLDI 1991). The
//! paper's worked examples — monomorphic and polymorphic `append` (§2.4,
//! §3), `map` (§2.2), the polymorphic `f`/`main` pair (§3) — are expressible
//! verbatim modulo spelling.
//!
//! ```
//! use tfgc_syntax::parse_program;
//!
//! # fn main() -> Result<(), tfgc_syntax::ParseError> {
//! let program = parse_program(
//!     "fun append [] ys = ys
//!        | append (x :: xs) ys = x :: append xs ys ;
//!      append [1, 2] [3]",
//! )?;
//! assert_eq!(program.fun_names(), vec!["append"]);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;

pub use ast::{
    Arm, BinOp, CtorDecl, DatatypeDecl, Decl, Expr, ExprKind, FunBind, LetBind, Pat, PatKind,
    Program, Ty, UnOp,
};
pub use error::{ParseError, ParseResult};
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse_expr, parse_program};
pub use span::Span;
