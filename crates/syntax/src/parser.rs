//! Recursive-descent parser for TFML.
//!
//! Precedence (loosest to tightest): `;` sequencing, `: ty` annotation,
//! `orelse`, `andalso`, comparisons, `::` (right-associative), `+ -`,
//! `* div mod`, prefix `~`/`not`, application, atoms. The expression
//! keywords `if`/`fn`/`case`/`let` may begin any operand and extend
//! maximally to the right, as in Standard ML.
//!
//! Clausal `fun` definitions are desugared here into a `case` over the
//! parameter tuple (see [`crate::ast`]).

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::Span;

/// Parses a complete TFML program: declarations followed by a main
/// expression.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_program(src: &str) -> ParseResult<Program> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut decls = Vec::new();
    loop {
        match p.peek_kind() {
            TokenKind::Datatype => decls.push(Decl::Datatype(p.datatype_decl()?)),
            TokenKind::Fun => decls.push(Decl::Fun(p.fun_decl_group()?)),
            TokenKind::Val => {
                p.bump();
                let pat = p.pattern()?;
                p.expect(TokenKind::Eq)?;
                let body = p.expr()?;
                decls.push(Decl::Val(pat, body));
            }
            _ => break,
        }
        // Declarations may be separated by `;`; because application is
        // juxtaposition, a `;` is *required* between the last declaration
        // and a main expression that starts with an atom.
        p.eat(&TokenKind::Semicolon);
    }
    let main = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(Program { decls, main })
}

/// Parses a single expression (used by tests and the REPL-style examples).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_expr(src: &str) -> ParseResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    fresh: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            fresh: 0,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> ParseResult<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                self.peek_span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
            ))
        }
    }

    fn expect_ident(&mut self) -> ParseResult<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let sp = self.bump().span;
                Ok((name, sp))
            }
            other => Err(ParseError::new(
                self.peek_span(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn fresh_name(&mut self, hint: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        // `#` cannot appear in a lexed identifier, so this never collides
        // with a user name.
        format!("{hint}#{n}")
    }

    // ---- Declarations ------------------------------------------------

    fn datatype_decl(&mut self) -> ParseResult<DatatypeDecl> {
        let start = self.expect(TokenKind::Datatype)?.span;
        let params = self.ty_params()?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Eq)?;
        let mut ctors = vec![self.ctor_decl()?];
        while self.eat(&TokenKind::Bar) {
            ctors.push(self.ctor_decl()?);
        }
        let end = ctors.last().map(|c| c.span).unwrap_or(start);
        Ok(DatatypeDecl {
            name,
            params,
            ctors,
            span: start.merge(end),
        })
    }

    fn ty_params(&mut self) -> ParseResult<Vec<String>> {
        match self.peek_kind().clone() {
            TokenKind::TyVar(v) => {
                self.bump();
                Ok(vec![v])
            }
            TokenKind::LParen => {
                // Could be `('a, 'b) name` — only consume if a tyvar follows.
                if let Some(Token {
                    kind: TokenKind::TyVar(_),
                    ..
                }) = self.tokens.get(self.pos + 1)
                {
                    self.bump(); // (
                    let mut params = Vec::new();
                    loop {
                        match self.peek_kind().clone() {
                            TokenKind::TyVar(v) => {
                                self.bump();
                                params.push(v);
                            }
                            other => {
                                return Err(ParseError::new(
                                    self.peek_span(),
                                    format!("expected type variable, found {}", other.describe()),
                                ))
                            }
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(params)
                } else {
                    Ok(Vec::new())
                }
            }
            _ => Ok(Vec::new()),
        }
    }

    fn ctor_decl(&mut self) -> ParseResult<CtorDecl> {
        let (name, span) = match self.peek_kind().clone() {
            TokenKind::UpperIdent(n) => {
                let sp = self.bump().span;
                (n, sp)
            }
            other => {
                return Err(ParseError::new(
                    self.peek_span(),
                    format!("expected constructor name, found {}", other.describe()),
                ))
            }
        };
        let args = if self.eat(&TokenKind::Of) {
            // `C of t1 * t2` gives a multi-argument constructor.
            let ty = self.ty()?;
            match ty {
                Ty::Tuple(ts) => ts,
                t => vec![t],
            }
        } else {
            Vec::new()
        };
        Ok(CtorDecl { name, args, span })
    }

    fn fun_decl_group(&mut self) -> ParseResult<Vec<FunBind>> {
        self.expect(TokenKind::Fun)?;
        let mut group = vec![self.fun_bind()?];
        while self.eat(&TokenKind::And) {
            group.push(self.fun_bind()?);
        }
        Ok(group)
    }

    /// Parses one (possibly clausal) function binding and desugars the
    /// clauses into a `case` over the parameter tuple.
    fn fun_bind(&mut self) -> ParseResult<FunBind> {
        let (name, name_span) = self.expect_ident()?;
        let mut clauses: Vec<(Vec<Pat>, Expr)> = Vec::new();
        loop {
            let mut pats = vec![self.atom_pattern()?];
            while self.starts_atom_pattern() {
                pats.push(self.atom_pattern()?);
            }
            // Optional result annotation `: ty` on the clause head.
            let ann = if self.eat(&TokenKind::Colon) {
                Some(self.ty()?)
            } else {
                None
            };
            self.expect(TokenKind::Eq)?;
            let mut body = self.expr()?;
            if let Some(ty) = ann {
                let sp = body.span;
                body = Expr::new(ExprKind::Ann(Box::new(body), ty), sp);
            }
            clauses.push((pats, body));
            // Another clause for the same function?
            if self.at(&TokenKind::Bar) {
                if let Some(Token {
                    kind: TokenKind::Ident(next_name),
                    ..
                }) = self.tokens.get(self.pos + 1)
                {
                    if *next_name == name {
                        self.bump(); // |
                        let _ = self.expect_ident()?;
                        continue;
                    }
                }
            }
            break;
        }
        self.desugar_clauses(name, name_span, clauses)
    }

    fn desugar_clauses(
        &mut self,
        name: String,
        span: Span,
        clauses: Vec<(Vec<Pat>, Expr)>,
    ) -> ParseResult<FunBind> {
        let arity = clauses[0].0.len();
        if clauses.iter().any(|(ps, _)| ps.len() != arity) {
            return Err(ParseError::new(
                span,
                format!("clauses of `{name}` have differing numbers of patterns"),
            ));
        }
        // Fast path: one clause, all parameters are plain variables.
        if clauses.len() == 1 {
            let all_vars = clauses[0]
                .0
                .iter()
                .all(|p| matches!(p.kind, PatKind::Var(_)));
            if all_vars {
                let (pats, body) = clauses.into_iter().next().expect("one clause");
                let params = pats
                    .into_iter()
                    .map(|p| match p.kind {
                        PatKind::Var(v) => v,
                        _ => unreachable!("checked all_vars"),
                    })
                    .collect();
                return Ok(FunBind {
                    name,
                    params,
                    body,
                    span,
                });
            }
        }
        // General case: fresh parameters, body cases over their tuple.
        let params: Vec<String> = (0..arity)
            .map(|i| self.fresh_name(&format!("arg{i}")))
            .collect();
        let scrutinee = if arity == 1 {
            Expr::new(ExprKind::Var(params[0].clone()), span)
        } else {
            Expr::new(
                ExprKind::Tuple(
                    params
                        .iter()
                        .map(|p| Expr::new(ExprKind::Var(p.clone()), span))
                        .collect(),
                ),
                span,
            )
        };
        let arms = clauses
            .into_iter()
            .map(|(pats, body)| {
                let pat = if arity == 1 {
                    pats.into_iter().next().expect("arity 1")
                } else {
                    let sp = pats
                        .iter()
                        .map(|p| p.span)
                        .reduce(Span::merge)
                        .unwrap_or(span);
                    Pat {
                        kind: PatKind::Tuple(pats),
                        span: sp,
                    }
                };
                Arm { pat, body }
            })
            .collect();
        let body = Expr::new(ExprKind::Case(Box::new(scrutinee), arms), span);
        Ok(FunBind {
            name,
            params,
            body,
            span,
        })
    }

    // ---- Types --------------------------------------------------------

    fn ty(&mut self) -> ParseResult<Ty> {
        let lhs = self.ty_prod()?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.ty()?;
            Ok(Ty::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ty_prod(&mut self) -> ParseResult<Ty> {
        let first = self.ty_app()?;
        if self.at(&TokenKind::Star) {
            let mut parts = vec![first];
            while self.eat(&TokenKind::Star) {
                parts.push(self.ty_app()?);
            }
            Ok(Ty::Tuple(parts))
        } else {
            Ok(first)
        }
    }

    /// Postfix type application: `int list`, `('a, int) pair list`.
    fn ty_app(&mut self) -> ParseResult<Ty> {
        let mut ty = self.ty_atom()?;
        while let TokenKind::Ident(name) = self.peek_kind().clone() {
            self.bump();
            ty = if name == "list" {
                Ty::List(Box::new(ty))
            } else {
                Ty::Named(name, vec![ty])
            };
        }
        Ok(ty)
    }

    fn ty_atom(&mut self) -> ParseResult<Ty> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(match name.as_str() {
                    "int" => Ty::Int,
                    "bool" => Ty::Bool,
                    "unit" => Ty::Unit,
                    _ => Ty::Named(name, Vec::new()),
                })
            }
            TokenKind::TyVar(v) => {
                self.bump();
                Ok(Ty::Var(v))
            }
            TokenKind::LParen => {
                self.bump();
                let mut tys = vec![self.ty()?];
                while self.eat(&TokenKind::Comma) {
                    tys.push(self.ty()?);
                }
                self.expect(TokenKind::RParen)?;
                if tys.len() == 1 {
                    Ok(tys.into_iter().next().expect("one element"))
                } else {
                    // `(t1, t2) name` — the name must follow.
                    let (name, _) = self.expect_ident()?;
                    if name == "list" {
                        Err(ParseError::new(
                            self.peek_span(),
                            "`list` takes exactly one type argument",
                        ))
                    } else {
                        Ok(Ty::Named(name, tys))
                    }
                }
            }
            other => Err(ParseError::new(
                self.peek_span(),
                format!("expected a type, found {}", other.describe()),
            )),
        }
    }

    // ---- Patterns -----------------------------------------------------

    fn starts_atom_pattern(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::Wildcard
                | TokenKind::Ident(_)
                | TokenKind::UpperIdent(_)
                | TokenKind::Int(_)
                | TokenKind::Tilde
                | TokenKind::True
                | TokenKind::False
                | TokenKind::LParen
                | TokenKind::LBracket
        )
    }

    fn pattern(&mut self) -> ParseResult<Pat> {
        let head = self.app_pattern()?;
        if self.eat(&TokenKind::Cons) {
            let tail = self.pattern()?;
            let span = head.span.merge(tail.span);
            Ok(Pat {
                kind: PatKind::Cons(Box::new(head), Box::new(tail)),
                span,
            })
        } else {
            Ok(head)
        }
    }

    fn app_pattern(&mut self) -> ParseResult<Pat> {
        if let TokenKind::UpperIdent(name) = self.peek_kind().clone() {
            let span = self.bump().span;
            let arg = if self.starts_atom_pattern() {
                Some(Box::new(self.atom_pattern()?))
            } else {
                None
            };
            let end = arg.as_ref().map(|p| p.span).unwrap_or(span);
            return Ok(Pat {
                kind: PatKind::Ctor(name, arg),
                span: span.merge(end),
            });
        }
        self.atom_pattern()
    }

    fn atom_pattern(&mut self) -> ParseResult<Pat> {
        let span = self.peek_span();
        match self.peek_kind().clone() {
            TokenKind::Wildcard => {
                self.bump();
                Ok(Pat {
                    kind: PatKind::Wild,
                    span,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Pat {
                    kind: PatKind::Var(name),
                    span,
                })
            }
            TokenKind::UpperIdent(name) => {
                self.bump();
                Ok(Pat {
                    kind: PatKind::Ctor(name, None),
                    span,
                })
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Pat {
                    kind: PatKind::Int(n),
                    span,
                })
            }
            TokenKind::Tilde => {
                self.bump();
                match self.peek_kind().clone() {
                    TokenKind::Int(n) => {
                        let end = self.bump().span;
                        Ok(Pat {
                            kind: PatKind::Int(-n),
                            span: span.merge(end),
                        })
                    }
                    other => Err(ParseError::new(
                        self.peek_span(),
                        format!(
                            "expected integer after `~` in pattern, found {}",
                            other.describe()
                        ),
                    )),
                }
            }
            TokenKind::True => {
                self.bump();
                Ok(Pat {
                    kind: PatKind::Bool(true),
                    span,
                })
            }
            TokenKind::False => {
                self.bump();
                Ok(Pat {
                    kind: PatKind::Bool(false),
                    span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                if self.at(&TokenKind::RParen) {
                    let end = self.bump().span;
                    return Ok(Pat {
                        kind: PatKind::Unit,
                        span: span.merge(end),
                    });
                }
                let mut pats = vec![self.pattern()?];
                while self.eat(&TokenKind::Comma) {
                    pats.push(self.pattern()?);
                }
                // Optional ascription `(p : ty)`.
                let ann = if self.eat(&TokenKind::Colon) {
                    Some(self.ty()?)
                } else {
                    None
                };
                let end = self.expect(TokenKind::RParen)?.span;
                let full = span.merge(end);
                let mut p = if pats.len() == 1 {
                    let mut p = pats.into_iter().next().expect("one element");
                    p.span = full;
                    p
                } else {
                    Pat {
                        kind: PatKind::Tuple(pats),
                        span: full,
                    }
                };
                if let Some(ty) = ann {
                    p = Pat {
                        kind: PatKind::Ascribe(Box::new(p), ty),
                        span: full,
                    };
                }
                Ok(p)
            }
            TokenKind::LBracket => {
                self.bump();
                if self.at(&TokenKind::RBracket) {
                    let end = self.bump().span;
                    return Ok(Pat {
                        kind: PatKind::Nil,
                        span: span.merge(end),
                    });
                }
                let mut pats = vec![self.pattern()?];
                while self.eat(&TokenKind::Comma) {
                    pats.push(self.pattern()?);
                }
                let end = self.expect(TokenKind::RBracket)?.span;
                // Desugar [p1, p2] into p1 :: p2 :: [].
                let mut acc = Pat {
                    kind: PatKind::Nil,
                    span: end,
                };
                for p in pats.into_iter().rev() {
                    let sp = p.span.merge(acc.span);
                    acc = Pat {
                        kind: PatKind::Cons(Box::new(p), Box::new(acc)),
                        span: sp,
                    };
                }
                acc.span = span.merge(end);
                Ok(acc)
            }
            other => Err(ParseError::new(
                span,
                format!("expected a pattern, found {}", other.describe()),
            )),
        }
    }

    // ---- Expressions --------------------------------------------------

    /// Expression entry point. Does *not* consume `;` — sequencing is only
    /// available inside parentheses (see [`Parser::seq_expr`]), so that `;`
    /// can serve as the top-level declaration separator.
    fn expr(&mut self) -> ParseResult<Expr> {
        self.ann_expr()
    }

    /// `e1; e2; ...` — used for the contents of parentheses.
    fn seq_expr(&mut self) -> ParseResult<Expr> {
        let mut acc = self.ann_expr()?;
        while self.eat(&TokenKind::Semicolon) {
            let next = self.ann_expr()?;
            let span = acc.span.merge(next.span);
            acc = Expr::new(ExprKind::Seq(Box::new(acc), Box::new(next)), span);
        }
        Ok(acc)
    }

    fn ann_expr(&mut self) -> ParseResult<Expr> {
        let e = self.or_expr()?;
        if self.eat(&TokenKind::Colon) {
            let ty = self.ty()?;
            let span = e.span;
            Ok(Expr::new(ExprKind::Ann(Box::new(e), ty), span))
        } else {
            Ok(e)
        }
    }

    /// True when the next token begins a keyword expression that extends
    /// maximally to the right.
    fn at_keyword_expr(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::If | TokenKind::Fn | TokenKind::Case | TokenKind::Let
        )
    }

    fn keyword_expr(&mut self) -> ParseResult<Expr> {
        let span = self.peek_span();
        match self.peek_kind().clone() {
            TokenKind::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(TokenKind::Then)?;
                let t = self.expr()?;
                self.expect(TokenKind::Else)?;
                let f = self.expr()?;
                let end = f.span;
                Ok(Expr::new(
                    ExprKind::If(Box::new(c), Box::new(t), Box::new(f)),
                    span.merge(end),
                ))
            }
            TokenKind::Fn => {
                self.bump();
                let (param, _) = match self.peek_kind().clone() {
                    TokenKind::Ident(name) => {
                        let sp = self.bump().span;
                        (name, sp)
                    }
                    TokenKind::Wildcard => {
                        let sp = self.bump().span;
                        (self.fresh_name("ignored"), sp)
                    }
                    other => {
                        return Err(ParseError::new(
                            self.peek_span(),
                            format!(
                                "expected parameter name after `fn`, found {}",
                                other.describe()
                            ),
                        ))
                    }
                };
                self.expect(TokenKind::DArrow)?;
                let body = self.expr()?;
                let end = body.span;
                Ok(Expr::new(
                    ExprKind::Lambda(param, Box::new(body)),
                    span.merge(end),
                ))
            }
            TokenKind::Case => {
                self.bump();
                let scrut = self.expr()?;
                self.expect(TokenKind::Of)?;
                self.eat(&TokenKind::Bar); // optional leading bar
                let mut arms = Vec::new();
                loop {
                    let pat = self.pattern()?;
                    self.expect(TokenKind::DArrow)?;
                    let body = self.expr()?;
                    arms.push(Arm { pat, body });
                    if !self.eat(&TokenKind::Bar) {
                        break;
                    }
                }
                let end = arms.last().map(|a| a.body.span).unwrap_or(span);
                Ok(Expr::new(
                    ExprKind::Case(Box::new(scrut), arms),
                    span.merge(end),
                ))
            }
            TokenKind::Let => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    match self.peek_kind() {
                        TokenKind::Val => {
                            self.bump();
                            // `val rec` is accepted as a synonym for `fun`
                            // with a lambda right-hand side.
                            if self.eat(&TokenKind::Rec) {
                                let (name, name_span) = self.expect_ident()?;
                                self.expect(TokenKind::Eq)?;
                                let body = self.expr()?;
                                let (params, inner) = strip_lambdas(body);
                                if params.is_empty() {
                                    return Err(ParseError::new(
                                        name_span,
                                        "`val rec` right-hand side must be a `fn`",
                                    ));
                                }
                                binds.push(LetBind::Fun(vec![FunBind {
                                    name,
                                    params,
                                    body: inner,
                                    span: name_span,
                                }]));
                            } else {
                                let pat = self.pattern()?;
                                self.expect(TokenKind::Eq)?;
                                let rhs = self.expr()?;
                                binds.push(LetBind::Val(pat, rhs));
                            }
                        }
                        TokenKind::Fun => {
                            binds.push(LetBind::Fun(self.fun_decl_group()?));
                        }
                        _ => break,
                    }
                }
                if binds.is_empty() {
                    return Err(ParseError::new(
                        self.peek_span(),
                        "expected `val` or `fun` after `let`",
                    ));
                }
                self.expect(TokenKind::In)?;
                let body = self.expr()?;
                let end = self.expect(TokenKind::End)?.span;
                Ok(Expr::new(
                    ExprKind::Let(binds, Box::new(body)),
                    span.merge(end),
                ))
            }
            other => Err(ParseError::new(
                span,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }

    fn or_expr(&mut self) -> ParseResult<Expr> {
        if self.at_keyword_expr() {
            return self.keyword_expr();
        }
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::Orelse) {
            self.bump();
            let rhs = if self.at_keyword_expr() {
                self.keyword_expr()?
            } else {
                self.and_expr()?
            };
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::BinOp(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> ParseResult<Expr> {
        if self.at_keyword_expr() {
            return self.keyword_expr();
        }
        let mut lhs = self.cmp_expr()?;
        while self.at(&TokenKind::Andalso) {
            self.bump();
            let rhs = if self.at_keyword_expr() {
                self.keyword_expr()?
            } else {
                self.cmp_expr()?
            };
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::BinOp(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> ParseResult<Expr> {
        if self.at_keyword_expr() {
            return self.keyword_expr();
        }
        let lhs = self.cons_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::NotEq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = if self.at_keyword_expr() {
                self.keyword_expr()?
            } else {
                self.cons_expr()?
            };
            let span = lhs.span.merge(rhs.span);
            Ok(Expr::new(
                ExprKind::BinOp(op, Box::new(lhs), Box::new(rhs)),
                span,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn cons_expr(&mut self) -> ParseResult<Expr> {
        if self.at_keyword_expr() {
            return self.keyword_expr();
        }
        let head = self.add_expr()?;
        if self.eat(&TokenKind::Cons) {
            let tail = self.cons_expr()?;
            let span = head.span.merge(tail.span);
            Ok(Expr::new(
                ExprKind::Cons(Box::new(head), Box::new(tail)),
                span,
            ))
        } else {
            Ok(head)
        }
    }

    fn add_expr(&mut self) -> ParseResult<Expr> {
        if self.at_keyword_expr() {
            return self.keyword_expr();
        }
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = if self.at_keyword_expr() {
                self.keyword_expr()?
            } else {
                self.mul_expr()?
            };
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::BinOp(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> ParseResult<Expr> {
        if self.at_keyword_expr() {
            return self.keyword_expr();
        }
        let mut lhs = self.prefix_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = if self.at_keyword_expr() {
                self.keyword_expr()?
            } else {
                self.prefix_expr()?
            };
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::BinOp(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn prefix_expr(&mut self) -> ParseResult<Expr> {
        let span = self.peek_span();
        match self.peek_kind() {
            TokenKind::Tilde => {
                self.bump();
                let inner = self.prefix_expr()?;
                let end = inner.span;
                Ok(Expr::new(
                    ExprKind::UnOp(UnOp::Neg, Box::new(inner)),
                    span.merge(end),
                ))
            }
            TokenKind::Not => {
                self.bump();
                let inner = self.prefix_expr()?;
                let end = inner.span;
                Ok(Expr::new(
                    ExprKind::UnOp(UnOp::Not, Box::new(inner)),
                    span.merge(end),
                ))
            }
            _ => self.app_expr(),
        }
    }

    fn app_expr(&mut self) -> ParseResult<Expr> {
        if self.at_keyword_expr() {
            return self.keyword_expr();
        }
        let mut f = self.atom_expr()?;
        loop {
            if self.starts_atom_expr() {
                let arg = self.atom_expr()?;
                let span = f.span.merge(arg.span);
                f = Expr::new(ExprKind::App(Box::new(f), Box::new(arg)), span);
            } else if self.at_keyword_expr() {
                let arg = self.keyword_expr()?;
                let span = f.span.merge(arg.span);
                f = Expr::new(ExprKind::App(Box::new(f), Box::new(arg)), span);
                break;
            } else {
                break;
            }
        }
        Ok(f)
    }

    fn starts_atom_expr(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::Int(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::Ident(_)
                | TokenKind::UpperIdent(_)
                | TokenKind::LParen
                | TokenKind::LBracket
        )
    }

    fn atom_expr(&mut self) -> ParseResult<Expr> {
        let span = self.peek_span();
        match self.peek_kind().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(n), span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Var(name), span))
            }
            TokenKind::UpperIdent(name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Ctor(name), span))
            }
            TokenKind::LParen => {
                self.bump();
                if self.at(&TokenKind::RParen) {
                    let end = self.bump().span;
                    return Ok(Expr::new(ExprKind::Unit, span.merge(end)));
                }
                let mut exprs = vec![self.seq_expr()?];
                while self.eat(&TokenKind::Comma) {
                    exprs.push(self.seq_expr()?);
                }
                let end = self.expect(TokenKind::RParen)?.span;
                if exprs.len() == 1 {
                    let mut e = exprs.into_iter().next().expect("one element");
                    e.span = span.merge(end);
                    Ok(e)
                } else {
                    Ok(Expr::new(ExprKind::Tuple(exprs), span.merge(end)))
                }
            }
            TokenKind::LBracket => {
                self.bump();
                if self.at(&TokenKind::RBracket) {
                    let end = self.bump().span;
                    return Ok(Expr::new(ExprKind::List(Vec::new()), span.merge(end)));
                }
                let mut exprs = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    exprs.push(self.expr()?);
                }
                let end = self.expect(TokenKind::RBracket)?.span;
                Ok(Expr::new(ExprKind::List(exprs), span.merge(end)))
            }
            other => Err(ParseError::new(
                span,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

/// Splits nested lambdas `fn x => fn y => e` into (`[x, y]`, `e`).
fn strip_lambdas(e: Expr) -> (Vec<String>, Expr) {
    let mut params = Vec::new();
    let mut cur = e;
    loop {
        match cur.kind {
            ExprKind::Lambda(p, body) => {
                params.push(p);
                cur = *body;
            }
            _ => return (params, cur),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_arithmetic_with_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::BinOp(BinOp::Add, _, rhs) => match rhs.kind {
                ExprKind::BinOp(BinOp::Mul, _, _) => {}
                other => panic!("expected Mul on rhs, got {other:?}"),
            },
            other => panic!("expected Add at top, got {other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_plus() {
        let e = parse_expr("f x + g y").unwrap();
        match e.kind {
            ExprKind::BinOp(BinOp::Add, lhs, rhs) => {
                assert!(matches!(lhs.kind, ExprKind::App(_, _)));
                assert!(matches!(rhs.kind, ExprKind::App(_, _)));
            }
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn cons_is_right_associative() {
        let e = parse_expr("1 :: 2 :: []").unwrap();
        match e.kind {
            ExprKind::Cons(h, t) => {
                assert!(matches!(h.kind, ExprKind::Int(1)));
                assert!(matches!(t.kind, ExprKind::Cons(_, _)));
            }
            other => panic!("expected Cons, got {other:?}"),
        }
    }

    #[test]
    fn if_extends_right() {
        let e = parse_expr("1 + if true then 2 else 3").unwrap();
        match e.kind {
            ExprKind::BinOp(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::If(_, _, _)));
            }
            other => panic!("expected Add(If) shape, got {other:?}"),
        }
    }

    #[test]
    fn parses_lambda_and_app() {
        let e = parse_expr("(fn x => x + 1) 41").unwrap();
        assert!(matches!(e.kind, ExprKind::App(_, _)));
    }

    #[test]
    fn parses_let_val_and_fun() {
        let e = parse_expr("let val x = 1 fun f y = y + x in f 2 end").unwrap();
        match e.kind {
            ExprKind::Let(binds, _) => {
                assert_eq!(binds.len(), 2);
                assert!(matches!(binds[0], LetBind::Val(_, _)));
                assert!(matches!(binds[1], LetBind::Fun(_)));
            }
            other => panic!("expected Let, got {other:?}"),
        }
    }

    #[test]
    fn parses_case_with_list_patterns() {
        let e = parse_expr("case xs of [] => 0 | x :: rest => x").unwrap();
        match e.kind {
            ExprKind::Case(_, arms) => {
                assert_eq!(arms.len(), 2);
                assert!(matches!(arms[0].pat.kind, PatKind::Nil));
                assert!(matches!(arms[1].pat.kind, PatKind::Cons(_, _)));
            }
            other => panic!("expected Case, got {other:?}"),
        }
    }

    #[test]
    fn parses_clausal_append_like_the_paper() {
        let src =
            "fun append [] ys = ys | append (x :: xs) ys = x :: append xs ys ; append [1,2] [3]";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.decls.len(), 1);
        match &prog.decls[0] {
            Decl::Fun(group) => {
                assert_eq!(group.len(), 1);
                let f = &group[0];
                assert_eq!(f.name, "append");
                assert_eq!(f.params.len(), 2);
                // Clausal definitions desugar to a case over the tuple.
                assert!(matches!(f.body.kind, ExprKind::Case(_, _)));
            }
            other => panic!("expected Fun decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_datatype_decl() {
        let src = "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree  0";
        let prog = parse_program(src).unwrap();
        match &prog.decls[0] {
            Decl::Datatype(dt) => {
                assert_eq!(dt.name, "tree");
                assert_eq!(dt.params, vec!["a".to_string()]);
                assert_eq!(dt.ctors.len(), 2);
                assert_eq!(dt.ctors[0].args.len(), 0);
                assert_eq!(dt.ctors[1].args.len(), 3);
            }
            other => panic!("expected Datatype, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_param_datatype() {
        let src = "datatype ('a, 'b) pair = P of 'a * 'b  0";
        let prog = parse_program(src).unwrap();
        match &prog.decls[0] {
            Decl::Datatype(dt) => {
                assert_eq!(dt.params.len(), 2);
                assert_eq!(dt.ctors[0].args.len(), 2);
            }
            other => panic!("expected Datatype, got {other:?}"),
        }
    }

    #[test]
    fn parses_mutual_recursion() {
        let src = "fun even n = if n = 0 then true else odd (n - 1) and odd n = if n = 0 then false else even (n - 1) ; even 10";
        let prog = parse_program(src).unwrap();
        match &prog.decls[0] {
            Decl::Fun(group) => assert_eq!(group.len(), 2),
            other => panic!("expected Fun group, got {other:?}"),
        }
    }

    #[test]
    fn parses_annotations() {
        let e = parse_expr("(xs : int list)").unwrap();
        assert!(matches!(e.kind, ExprKind::Ann(_, Ty::List(_))));
    }

    #[test]
    fn parses_seq() {
        let e = parse_expr("(print 1; print 2; 3)").unwrap();
        assert!(matches!(e.kind, ExprKind::Seq(_, _)));
    }

    #[test]
    fn parses_negative_literal_pattern() {
        let e = parse_expr("case x of ~1 => 0 | _ => 1").unwrap();
        match e.kind {
            ExprKind::Case(_, arms) => {
                assert!(matches!(arms[0].pat.kind, PatKind::Int(-1)));
            }
            other => panic!("expected Case, got {other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_clause_arity() {
        let src = "fun f x = x | f x y = x  0";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("let in end").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_program("datatype = Foo 0").is_err());
    }

    #[test]
    fn comparison_is_non_associative_single_use() {
        let e = parse_expr("1 < 2").unwrap();
        assert!(matches!(e.kind, ExprKind::BinOp(BinOp::Lt, _, _)));
    }

    #[test]
    fn andalso_orelse_precedence() {
        let e = parse_expr("a orelse b andalso c").unwrap();
        match e.kind {
            ExprKind::BinOp(BinOp::Or, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::BinOp(BinOp::And, _, _)));
            }
            other => panic!("expected Or(And) shape, got {other:?}"),
        }
    }

    #[test]
    fn list_literal_expr() {
        let e = parse_expr("[1, 2, 3]").unwrap();
        match e.kind {
            ExprKind::List(es) => assert_eq!(es.len(), 3),
            other => panic!("expected List, got {other:?}"),
        }
    }

    #[test]
    fn val_rec_parses_as_fun() {
        let e = parse_expr(
            "let val rec loop = fn n => if n = 0 then 0 else loop (n - 1) in loop 3 end",
        )
        .unwrap();
        match e.kind {
            ExprKind::Let(binds, _) => assert!(matches!(binds[0], LetBind::Fun(_))),
            other => panic!("expected Let, got {other:?}"),
        }
    }
}
