//! Root facade for the tag-free GC reproduction workspace.
//!
//! Re-exports the [`tfgc`] driver crate; see `crates/core` for the pipeline
//! API and `DESIGN.md` for the full system inventory.
pub use tfgc::*;
